#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

namespace parastack::sched {
namespace {

JobTicket ticket_64x16(sim::Time walltime = sim::kHour) {
  JobTicket ticket;
  ticket.nodes = 64;
  ticket.cores_per_node = 16;
  ticket.walltime = walltime;
  ticket.job_name = "hpl_run";
  return ticket;
}

TEST(ServiceUnits, NodesTimesCoresTimesHours) {
  // Paper §7.1-V: SUs = nodes x cores/node x elapsed hours.
  EXPECT_DOUBLE_EQ(service_units(ticket_64x16(), sim::kHour), 1024.0);
  EXPECT_DOUBLE_EQ(service_units(ticket_64x16(), sim::kHour / 2), 512.0);
  EXPECT_DOUBLE_EQ(service_units(ticket_64x16(), 0), 0.0);
}

TEST(Settle, CompletedJobBillsItsRuntime) {
  const auto charge =
      settle(ticket_64x16(), /*finish=*/30 * sim::kMinute, std::nullopt);
  EXPECT_EQ(charge.end, JobEnd::kCompleted);
  EXPECT_EQ(charge.elapsed, 30 * sim::kMinute);
  EXPECT_DOUBLE_EQ(charge.savings_fraction, 0.0);
}

TEST(Settle, HangWithoutDetectorBurnsTheSlot) {
  const auto charge = settle(ticket_64x16(), std::nullopt, std::nullopt);
  EXPECT_EQ(charge.end, JobEnd::kWalltimeExpired);
  EXPECT_EQ(charge.elapsed, sim::kHour);
  EXPECT_DOUBLE_EQ(charge.service_units, 1024.0);
}

TEST(Settle, DetectionKillsEarlyAndSaves) {
  const auto charge =
      settle(ticket_64x16(), std::nullopt, /*detection=*/15 * sim::kMinute);
  EXPECT_EQ(charge.end, JobEnd::kKilledOnHangDetection);
  EXPECT_EQ(charge.elapsed, 15 * sim::kMinute);
  EXPECT_DOUBLE_EQ(charge.savings_fraction, 0.75);
  EXPECT_DOUBLE_EQ(charge.service_units, 256.0);
}

TEST(Settle, CompletionBeforeDetectionWins) {
  const auto charge = settle(ticket_64x16(), /*finish=*/10 * sim::kMinute,
                             /*detection=*/20 * sim::kMinute);
  EXPECT_EQ(charge.end, JobEnd::kCompleted);
}

TEST(Settle, LateDetectionStillExpires) {
  const auto charge =
      settle(ticket_64x16(), std::nullopt, /*detection=*/2 * sim::kHour);
  EXPECT_EQ(charge.end, JobEnd::kWalltimeExpired);
  EXPECT_EQ(charge.elapsed, sim::kHour);
}

TEST(SubmissionCommand, SlurmShape) {
  const auto command = submission_command(BatchSystem::kSlurm, ticket_64x16(),
                                          "./xhpl");
  EXPECT_NE(command.find("--nodes=64"), std::string::npos);
  EXPECT_NE(command.find("--ntasks-per-node=16"), std::string::npos);
  EXPECT_NE(command.find("--time=01:00:00"), std::string::npos);
  EXPECT_NE(command.find("--monitor-per-node"), std::string::npos);
  EXPECT_NE(command.find("./xhpl"), std::string::npos);
}

TEST(SubmissionCommand, TorqueShape) {
  const auto command = submission_command(BatchSystem::kTorque, ticket_64x16(),
                                          "./xhpl");
  EXPECT_NE(command.find("nodes=64:ppn=16"), std::string::npos);
  EXPECT_NE(command.find("walltime=01:00:00"), std::string::npos);
}

TEST(JobLifecycle, HappyPathRecoversOnce) {
  JobLifecycle job(/*max_restarts=*/2);
  job.launch(0);
  job.suspect(10);
  job.kill(20);
  EXPECT_TRUE(job.try_restore(20));
  job.resume(25);
  EXPECT_EQ(job.restarts(), 1);
  job.complete(100);
  EXPECT_TRUE(job.terminal());
  EXPECT_EQ(job.state(), JobState::kCompleted);
  // Every hop is on the audit trail, in order.
  ASSERT_EQ(job.history().size(), 6u);
  EXPECT_EQ(job.history().front().to, JobState::kRunning);
  EXPECT_EQ(job.history().back().to, JobState::kCompleted);
}

TEST(JobLifecycle, RetryBudgetEscalatesKillToGiveUp) {
  JobLifecycle job(/*max_restarts=*/1);
  job.launch(0);
  job.kill(20);
  ASSERT_TRUE(job.try_restore(20));
  job.resume(25);
  job.kill(50);
  // The budget is spent: the same call that would restore now gives up.
  EXPECT_FALSE(job.try_restore(50));
  EXPECT_EQ(job.state(), JobState::kGaveUp);
  EXPECT_TRUE(job.terminal());
  EXPECT_EQ(job.restarts(), 1);
}

TEST(JobLifecycle, PolicyExhaustionGivesUpMidRestore) {
  // give_up() is legal from restoring too: a policy can discover mid-restore
  // (spares gone, no replica) that it cannot actually produce a world.
  JobLifecycle job(/*max_restarts=*/5);
  job.launch(0);
  job.kill(20);
  ASSERT_TRUE(job.try_restore(20));
  job.give_up(22);
  EXPECT_EQ(job.state(), JobState::kGaveUp);
}

TEST(JobLifecycle, WalltimeExpiryIsLegalFromAnyNonTerminalState) {
  for (const bool mid_restore : {false, true}) {
    JobLifecycle job(/*max_restarts=*/3);
    job.launch(0);
    job.kill(20);
    if (mid_restore) {
      ASSERT_TRUE(job.try_restore(20));
    }
    job.expire(3600);
    EXPECT_EQ(job.state(), JobState::kExpired);
    EXPECT_TRUE(job.terminal());
  }
}

TEST(JobLifecycleDeath, IllegalTransitionsFailLoudly) {
  JobLifecycle job(/*max_restarts=*/1);
  EXPECT_DEATH(job.kill(0), "");  // pending, never launched
  job.launch(0);
  job.complete(10);
  EXPECT_DEATH(job.launch(20), "");  // terminal states stay terminal
}

TEST(SettleRecovered, RecoveredJobBillsThroughTheFinalAttempt) {
  // The recovered job bills its whole occupancy — restarts and restore
  // overheads included — but ends as a completion, not a kill.
  const auto charge = settle_recovered(ticket_64x16(),
                                       /*finish=*/45 * sim::kMinute,
                                       /*ended=*/45 * sim::kMinute,
                                       /*gave_up=*/false,
                                       /*su_multiplier=*/1.0);
  EXPECT_EQ(charge.end, JobEnd::kCompleted);
  EXPECT_EQ(charge.elapsed, 45 * sim::kMinute);
  EXPECT_DOUBLE_EQ(charge.service_units, 768.0);
}

TEST(SettleRecovered, GiveUpReclassifiesTheKill) {
  const auto charge = settle_recovered(ticket_64x16(), std::nullopt,
                                       /*ended=*/30 * sim::kMinute,
                                       /*gave_up=*/true, 1.0);
  EXPECT_EQ(charge.end, JobEnd::kGaveUp);
  EXPECT_EQ(charge.elapsed, 30 * sim::kMinute);
}

TEST(SettleRecovered, ReplicationMultipliesTheBill) {
  // Team replication burns `replicas` allocations for the same wall-clock.
  const auto charge = settle_recovered(ticket_64x16(),
                                       /*finish=*/30 * sim::kMinute,
                                       /*ended=*/30 * sim::kMinute,
                                       /*gave_up=*/false,
                                       /*su_multiplier=*/3.0);
  EXPECT_DOUBLE_EQ(charge.service_units, 3.0 * 512.0);
}

}  // namespace
}  // namespace parastack::sched
