// sched under concurrent tenants: independent JobLifecycle machines
// interleaved on one fleet timeline, the bounded MonitorPool admission
// semantics, and FleetBill rolling give-ups and refusals into the
// fleet-level SU ledger.

#include <gtest/gtest.h>

#include "sched/scheduler.hpp"

namespace parastack::sched {
namespace {

constexpr sim::Time kS = sim::kSecond;

JobTicket ticket(int nodes = 4, sim::Time walltime = sim::kHour) {
  JobTicket t;
  t.nodes = nodes;
  t.cores_per_node = 24;
  t.walltime = walltime;
  return t;
}

TEST(FleetSched, TwoJobsSuspectedTheSameTickStayIndependent) {
  // Both tenants trip their suspicion streak at the same instant; one
  // recovers, the other's budget is already spent. Neither machine may
  // observe the other's transitions.
  JobLifecycle a(/*max_restarts=*/1);
  JobLifecycle b(/*max_restarts=*/0);
  a.launch(0);
  b.launch(0);
  const sim::Time tick = 40 * kS;
  a.suspect(tick);
  b.suspect(tick);
  a.kill(tick);
  b.kill(tick);
  EXPECT_TRUE(a.try_restore(tick));
  EXPECT_FALSE(b.try_restore(tick));  // budget exhausted -> gave up
  a.resume(tick + 20 * kS);
  a.complete(tick + 100 * kS);

  EXPECT_EQ(a.state(), JobState::kCompleted);
  EXPECT_EQ(b.state(), JobState::kGaveUp);
  EXPECT_EQ(a.restarts(), 1);
  EXPECT_EQ(b.restarts(), 0);
  ASSERT_EQ(a.history().size(), 6u);
  ASSERT_EQ(b.history().size(), 4u);
  // Same-tick transitions carry the same timestamp on both machines.
  EXPECT_EQ(a.history()[2].at, b.history()[2].at);
  EXPECT_EQ(b.history().back().to, JobState::kGaveUp);
}

TEST(FleetSched, RecoveryOfOneTenantMidSuspicionOfAnother) {
  // Tenant A runs its whole kill -> restore -> resume arc while tenant B
  // sits inside a suspicion gather; B's machine is untouched by it.
  JobLifecycle a(1);
  JobLifecycle b(1);
  a.launch(0);
  b.launch(0);
  b.suspect(30 * kS);  // B's verification gather opens first
  a.suspect(35 * kS);
  a.kill(35 * kS);
  ASSERT_TRUE(a.try_restore(35 * kS));
  a.resume(55 * kS);  // A is running again while B still gathers
  EXPECT_EQ(b.state(), JobState::kSuspected);
  b.clear_suspicion(60 * kS);  // B's gather ends: false alarm
  a.complete(200 * kS);
  b.complete(210 * kS);

  EXPECT_EQ(a.state(), JobState::kCompleted);
  EXPECT_EQ(b.state(), JobState::kCompleted);
  EXPECT_EQ(a.restarts(), 1);
  EXPECT_EQ(b.restarts(), 0);
  // B's audited path never saw a kill.
  for (const auto& transition : b.history()) {
    EXPECT_NE(transition.to, JobState::kKilled);
  }
}

TEST(FleetSched, MonitorPoolTracksOccupancyAndRefusals) {
  MonitorPool pool(4);
  EXPECT_TRUE(pool.bounded());
  EXPECT_TRUE(pool.try_acquire(3));
  EXPECT_FALSE(pool.try_acquire(2));  // would exceed capacity
  EXPECT_EQ(pool.refusals(), 1u);
  EXPECT_TRUE(pool.try_acquire(1));
  EXPECT_EQ(pool.in_use(), 4);
  EXPECT_EQ(pool.high_water(), 4);
  pool.release(3);
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_TRUE(pool.try_acquire(2));
  EXPECT_EQ(pool.high_water(), 4);  // high water survives the drain
  EXPECT_EQ(pool.refusals(), 1u);
}

TEST(FleetSched, UnboundedPoolAdmitsEverythingButStillMeters) {
  MonitorPool pool;
  EXPECT_FALSE(pool.bounded());
  EXPECT_TRUE(pool.try_acquire(1000));
  EXPECT_TRUE(pool.try_acquire(1000));
  EXPECT_EQ(pool.refusals(), 0u);
  EXPECT_EQ(pool.high_water(), 2000);
  pool.release(1500);
  EXPECT_EQ(pool.in_use(), 500);
}

TEST(FleetSched, RefusedLifecycleIsTerminalAtArrival) {
  JobLifecycle lc;
  lc.refuse(5 * kS);
  EXPECT_EQ(lc.state(), JobState::kRefused);
  EXPECT_TRUE(lc.terminal());
  ASSERT_EQ(lc.history().size(), 1u);
  EXPECT_EQ(lc.history()[0].from, JobState::kPending);
  EXPECT_EQ(lc.history()[0].at, 5 * kS);
  EXPECT_EQ(job_state_name(JobState::kRefused), "refused");
}

TEST(FleetSched, FleetBillBucketsEveryEndState) {
  const JobTicket t = ticket(4, sim::kHour);
  FleetBill bill;
  // Completed job: billed to its finish.
  bill.add(t, settle_recovered(t, 30 * sim::kMinute, {}, false, 1.0));
  // Killed-on-detection job: billed to the kill, credited the rest.
  bill.add(t, settle_recovered(t, {}, 15 * sim::kMinute, false, 1.0));
  // Give-up: the kill is reclassified, with no savings credit.
  bill.add(t, settle_recovered(t, {}, 45 * sim::kMinute, true, 1.0));
  // Expired: burned the entire slot.
  bill.add(t, settle_recovered(t, {}, sim::kHour, false, 1.0));
  bill.add_refusal();

  EXPECT_EQ(bill.jobs, 4);  // the refusal is counted apart, never billed
  EXPECT_EQ(bill.completed, 1);
  EXPECT_EQ(bill.killed, 1);
  EXPECT_EQ(bill.gave_up, 1);
  EXPECT_EQ(bill.expired, 1);
  EXPECT_EQ(bill.refused, 1);
  // 4 nodes x 24 cores: 0.5 h + 0.25 h + 0.75 h + 1 h = 2.5 h of slot.
  EXPECT_DOUBLE_EQ(bill.su_billed, 4 * 24 * 2.5);
  // Savings come from the killed job alone: the 45 min it did not burn.
  EXPECT_DOUBLE_EQ(bill.su_saved, 4 * 24 * 0.75);
  EXPECT_DOUBLE_EQ(bill.machine_hours_saved(24), 4 * 0.75);
}

TEST(FleetSched, GiveUpChargesScaleWithTheReplicaMultiplier) {
  // A team-replication tenant that gives up burned every replica's
  // allocation for the elapsed span; the fleet ledger must bill all of it.
  const JobTicket t = ticket(2, sim::kHour);
  FleetBill bill;
  const JobCharge charge =
      settle_recovered(t, {}, 20 * sim::kMinute, true, 3.0);
  EXPECT_EQ(charge.end, JobEnd::kGaveUp);
  EXPECT_DOUBLE_EQ(charge.savings_fraction, 0.0);
  bill.add(t, charge);
  EXPECT_EQ(bill.gave_up, 1);
  EXPECT_DOUBLE_EQ(bill.su_billed, 2 * 24 * (20.0 / 60.0) * 3.0);
  EXPECT_DOUBLE_EQ(bill.su_saved, 0.0);
}

}  // namespace
}  // namespace parastack::sched
