#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

namespace parastack::stats {
namespace {

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_EQ(ecdf.cdf(0.5), 0.0);
  EXPECT_EQ(ecdf.mean(), 0.0);
}

TEST(EmpiricalCdf, CdfStepsAtSupportPoints) {
  EmpiricalCdf ecdf;
  for (const double v : {0.0, 0.0, 0.5, 1.0}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.cdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.49), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.5), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.cdf(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.cdf(2.0), 1.0);
}

TEST(EmpiricalCdf, QuantileIsGeneralizedInverse) {
  EmpiricalCdf ecdf;
  for (const double v : {0.1, 0.2, 0.2, 0.9}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.25), 0.1);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.26), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.75), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.76), 0.9);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 0.9);
}

TEST(EmpiricalCdf, QuantileCdfRoundTrip) {
  EmpiricalCdf ecdf;
  for (int i = 0; i < 50; ++i) ecdf.add(0.1 * (i % 10));
  for (const double p : {0.1, 0.3, 0.5, 0.77, 1.0}) {
    const double t = ecdf.quantile(p);
    EXPECT_GE(ecdf.cdf(t) + 1e-12, p);
  }
}

TEST(EmpiricalCdf, SupportIsSortedDistinctCumulative) {
  EmpiricalCdf ecdf;
  for (const double v : {0.5, 0.0, 0.5, 1.0, 0.0, 0.0}) ecdf.add(v);
  const auto& support = ecdf.support();
  ASSERT_EQ(support.size(), 3u);
  EXPECT_DOUBLE_EQ(support[0].value, 0.0);
  EXPECT_DOUBLE_EQ(support[0].cum_prob, 0.5);
  EXPECT_DOUBLE_EQ(support[1].value, 0.5);
  EXPECT_DOUBLE_EQ(support[1].cum_prob, 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(support[2].value, 1.0);
  EXPECT_DOUBLE_EQ(support[2].cum_prob, 1.0);
}

TEST(EmpiricalCdf, ThinHalfKeepsEveryOtherSampleInTimeOrder) {
  EmpiricalCdf ecdf;
  for (int i = 0; i < 10; ++i) ecdf.add(static_cast<double>(i));
  ecdf.thin_half();
  ASSERT_EQ(ecdf.size(), 5u);
  const auto& samples = ecdf.samples();
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(samples[static_cast<std::size_t>(i)],
                     static_cast<double>(2 * i));
  }
  // Odd count: keeps ceil(n/2).
  ecdf.thin_half();
  EXPECT_EQ(ecdf.size(), 3u);
}

TEST(EmpiricalCdf, MeanTracksSamples) {
  EmpiricalCdf ecdf;
  ecdf.add(1.0);
  ecdf.add(3.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 2.0);
}

TEST(EmpiricalCdf, QuantileZeroIsMinimumSample) {
  // The closed lower bound matches util::Histogram::quantile: p == 0 asks
  // for the infimum of the support, which for a finite sample set is the
  // minimum sample.
  EmpiricalCdf ecdf;
  for (const double v : {0.7, 0.2, 0.9, 0.2}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 0.2);
  // Still the generalized inverse everywhere else.
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 0.9);
}

TEST(EmpiricalCdf, IncrementalRefreshMatchesFullRebuild) {
  // Interleave adds with queries so the sorted cache's merge path (not just
  // the first full sort) is exercised, including duplicate values landing
  // in both the old and new halves of the merge.
  EmpiricalCdf ecdf;
  EmpiricalCdf oracle;
  const double values[] = {0.5, 0.1, 0.5, 0.9, 0.1, 0.3, 0.9, 0.3, 0.0};
  for (const double v : values) {
    ecdf.add(v);
    EXPECT_DOUBLE_EQ(ecdf.cdf(v), ecdf.cdf(v));  // force refresh per add
  }
  for (const double v : values) oracle.add(v);
  const auto& got = ecdf.support();
  const auto& want = oracle.support();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].value, want[i].value);
    EXPECT_DOUBLE_EQ(got[i].cum_prob, want[i].cum_prob);
  }
}

TEST(EmpiricalCdfDeath, QuantileRequiresValidArgs) {
  EmpiricalCdf ecdf;
  EXPECT_DEATH((void)ecdf.quantile(0.5), "empty");
  ecdf.add(1.0);
  EXPECT_DEATH((void)ecdf.quantile(-0.1), "p must be");
  EXPECT_DEATH((void)ecdf.quantile(1.5), "p must be");
}

}  // namespace
}  // namespace parastack::stats
