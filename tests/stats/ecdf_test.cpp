#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

namespace parastack::stats {
namespace {

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_EQ(ecdf.cdf(0.5), 0.0);
  EXPECT_EQ(ecdf.mean(), 0.0);
}

TEST(EmpiricalCdf, CdfStepsAtSupportPoints) {
  EmpiricalCdf ecdf;
  for (const double v : {0.0, 0.0, 0.5, 1.0}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.cdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.49), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.5), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.cdf(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.cdf(2.0), 1.0);
}

TEST(EmpiricalCdf, QuantileIsGeneralizedInverse) {
  EmpiricalCdf ecdf;
  for (const double v : {0.1, 0.2, 0.2, 0.9}) ecdf.add(v);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.25), 0.1);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.26), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.75), 0.2);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.76), 0.9);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 0.9);
}

TEST(EmpiricalCdf, QuantileCdfRoundTrip) {
  EmpiricalCdf ecdf;
  for (int i = 0; i < 50; ++i) ecdf.add(0.1 * (i % 10));
  for (const double p : {0.1, 0.3, 0.5, 0.77, 1.0}) {
    const double t = ecdf.quantile(p);
    EXPECT_GE(ecdf.cdf(t) + 1e-12, p);
  }
}

TEST(EmpiricalCdf, SupportIsSortedDistinctCumulative) {
  EmpiricalCdf ecdf;
  for (const double v : {0.5, 0.0, 0.5, 1.0, 0.0, 0.0}) ecdf.add(v);
  const auto& support = ecdf.support();
  ASSERT_EQ(support.size(), 3u);
  EXPECT_DOUBLE_EQ(support[0].value, 0.0);
  EXPECT_DOUBLE_EQ(support[0].cum_prob, 0.5);
  EXPECT_DOUBLE_EQ(support[1].value, 0.5);
  EXPECT_DOUBLE_EQ(support[1].cum_prob, 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(support[2].value, 1.0);
  EXPECT_DOUBLE_EQ(support[2].cum_prob, 1.0);
}

TEST(EmpiricalCdf, ThinHalfKeepsEveryOtherSampleInTimeOrder) {
  EmpiricalCdf ecdf;
  for (int i = 0; i < 10; ++i) ecdf.add(static_cast<double>(i));
  ecdf.thin_half();
  ASSERT_EQ(ecdf.size(), 5u);
  const auto& samples = ecdf.samples();
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(samples[static_cast<std::size_t>(i)],
                     static_cast<double>(2 * i));
  }
  // Odd count: keeps ceil(n/2).
  ecdf.thin_half();
  EXPECT_EQ(ecdf.size(), 3u);
}

TEST(EmpiricalCdf, MeanTracksSamples) {
  EmpiricalCdf ecdf;
  ecdf.add(1.0);
  ecdf.add(3.0);
  EXPECT_DOUBLE_EQ(ecdf.mean(), 2.0);
}

TEST(EmpiricalCdfDeath, QuantileRequiresValidArgs) {
  EmpiricalCdf ecdf;
  EXPECT_DEATH((void)ecdf.quantile(0.5), "empty");
  ecdf.add(1.0);
  EXPECT_DEATH((void)ecdf.quantile(0.0), "p must be");
  EXPECT_DEATH((void)ecdf.quantile(1.5), "p must be");
}

}  // namespace
}  // namespace parastack::stats
