#include "stats/binomial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace parastack::stats {
namespace {

TEST(CiSampleBound, MatchesFormula) {
  // n(p) = 3.8416 / e^2 * p(1-p); paper Figure 5's curve.
  EXPECT_NEAR(ci_sample_bound(0.5, 0.1), 3.8416 / 0.01 * 0.25, 1e-9);
  EXPECT_NEAR(ci_sample_bound(0.2, 0.3), 3.8416 / 0.09 * 0.16, 1e-9);
}

TEST(MinSamplesFor, TakesTheBindingConstraint) {
  // At small p the rule-of-thumb term 5/p dominates.
  EXPECT_NEAR(min_samples_for(0.01, 0.3), 500.0, 1e-9);
  // Near p = 1 the mirrored rule 5/(1-p) dominates.
  EXPECT_NEAR(min_samples_for(0.99, 0.3), 500.0, 1e-9);
  // In the middle the CI-width term dominates for small e.
  EXPECT_NEAR(min_samples_for(0.5, 0.05), 3.8416 / 0.0025 * 0.25, 1e-9);
}

TEST(OptimalSuspicionPoint, ReproducesPaperLadder) {
  // Paper §3.2: (p_m, n_m) = (0.47, 11), (0.27, 19), (0.12, 42), (0.06, 86)
  // for e = 0.3, 0.2, 0.1, 0.05.
  const struct {
    double e;
    double p_m;
    std::size_t n_m;
  } expectations[] = {
      {0.3, 0.47, 11},
      {0.2, 0.27, 19},
      {0.1, 0.12, 42},
      {0.05, 0.06, 86},
  };
  for (const auto& expected : expectations) {
    const auto point = optimal_suspicion_point(expected.e);
    EXPECT_NEAR(point.p_m, expected.p_m, 0.011) << "e=" << expected.e;
    EXPECT_EQ(point.n_m, expected.n_m) << "e=" << expected.e;
  }
}

TEST(OptimalSuspicionPoint, MatchesPaperOptimumToReportedPrecision) {
  // The paper reports the optimum to two decimals; the polished point must
  // round to exactly those values, and its sample bound must ceil to the
  // paper's n_m.
  const struct {
    double e;
    double p_m;
    std::size_t n_m;
  } paper[] = {
      {0.3, 0.47, 11},
      {0.2, 0.27, 19},
      {0.1, 0.12, 42},
      {0.05, 0.06, 86},
  };
  for (const auto& expected : paper) {
    const auto point = optimal_suspicion_point(expected.e);
    EXPECT_DOUBLE_EQ(std::round(point.p_m * 100.0) / 100.0, expected.p_m)
        << "e=" << expected.e;
    EXPECT_EQ(point.n_m, expected.n_m) << "e=" << expected.e;
  }
}

TEST(OptimalSuspicionPoint, PolishBeatsTheScanGrid) {
  // The local refinement promised by the implementation must actually
  // land at (or below) the best 1e-4 grid cell — at the optimum the
  // binding constraints cross, so the continuous minimum sits strictly
  // between grid points almost surely.
  for (const double e : kToleranceLadder) {
    const auto point = optimal_suspicion_point(e);
    const double at_point = min_samples_for(point.p_m, e);
    double best_grid = min_samples_for(0.5, e);
    for (int i = 1; i <= 5000; ++i) {
      best_grid = std::min(best_grid,
                           min_samples_for(static_cast<double>(i) / 10000.0, e));
    }
    EXPECT_LE(at_point, best_grid) << "e=" << e;
    // And the refined point is a stationary point of the max(): the
    // decreasing rule-of-thumb branch and the CI branch agree there.
    const double rule = 5.0 / point.p_m;
    EXPECT_NEAR(rule, at_point, at_point * 1e-5) << "e=" << e;
  }
}

TEST(OptimalSuspicionPoint, MinimumIsGenuine) {
  for (const double e : kToleranceLadder) {
    const auto point = optimal_suspicion_point(e);
    const double at_min = min_samples_for(point.p_m, e);
    for (const double p : {0.02, 0.1, 0.25, 0.4, 0.5}) {
      EXPECT_GE(min_samples_for(p, e) + 1e-6, at_min - 1.0)
          << "p=" << p << " e=" << e;
    }
  }
}

TEST(OptimalSuspicionPoint, LadderIsMonotonic) {
  // Tighter tolerance must demand more samples and a smaller p.
  double prev_n = 0.0;
  double prev_p = 1.0;
  for (const double e : kToleranceLadder) {  // 0.3 -> 0.05
    const auto point = optimal_suspicion_point(e);
    EXPECT_GT(static_cast<double>(point.n_m), prev_n);
    EXPECT_LT(point.p_m, prev_p);
    prev_n = static_cast<double>(point.n_m);
    prev_p = point.p_m;
  }
}

TEST(MinSamplesForDeath, RejectsDegenerateP) {
  EXPECT_DEATH((void)min_samples_for(0.0, 0.1), "p must be");
  EXPECT_DEATH((void)min_samples_for(1.0, 0.1), "p must be");
}

}  // namespace
}  // namespace parastack::stats
