#include "stats/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace parastack::stats {
namespace {

TEST(CiSampleBound, MatchesFormula) {
  // n(p) = 3.8416 / e^2 * p(1-p); paper Figure 5's curve.
  EXPECT_NEAR(ci_sample_bound(0.5, 0.1), 3.8416 / 0.01 * 0.25, 1e-9);
  EXPECT_NEAR(ci_sample_bound(0.2, 0.3), 3.8416 / 0.09 * 0.16, 1e-9);
}

TEST(MinSamplesFor, TakesTheBindingConstraint) {
  // At small p the rule-of-thumb term 5/p dominates.
  EXPECT_NEAR(min_samples_for(0.01, 0.3), 500.0, 1e-9);
  // Near p = 1 the mirrored rule 5/(1-p) dominates.
  EXPECT_NEAR(min_samples_for(0.99, 0.3), 500.0, 1e-9);
  // In the middle the CI-width term dominates for small e.
  EXPECT_NEAR(min_samples_for(0.5, 0.05), 3.8416 / 0.0025 * 0.25, 1e-9);
}

TEST(OptimalSuspicionPoint, ReproducesPaperLadder) {
  // Paper §3.2: (p_m, n_m) = (0.47, 11), (0.27, 19), (0.12, 42), (0.06, 86)
  // for e = 0.3, 0.2, 0.1, 0.05.
  const struct {
    double e;
    double p_m;
    std::size_t n_m;
  } expectations[] = {
      {0.3, 0.47, 11},
      {0.2, 0.27, 19},
      {0.1, 0.12, 42},
      {0.05, 0.06, 86},
  };
  for (const auto& expected : expectations) {
    const auto point = optimal_suspicion_point(expected.e);
    EXPECT_NEAR(point.p_m, expected.p_m, 0.011) << "e=" << expected.e;
    EXPECT_EQ(point.n_m, expected.n_m) << "e=" << expected.e;
  }
}

TEST(OptimalSuspicionPoint, MinimumIsGenuine) {
  for (const double e : kToleranceLadder) {
    const auto point = optimal_suspicion_point(e);
    const double at_min = min_samples_for(point.p_m, e);
    for (const double p : {0.02, 0.1, 0.25, 0.4, 0.5}) {
      EXPECT_GE(min_samples_for(p, e) + 1e-6, at_min - 1.0)
          << "p=" << p << " e=" << e;
    }
  }
}

TEST(OptimalSuspicionPoint, LadderIsMonotonic) {
  // Tighter tolerance must demand more samples and a smaller p.
  double prev_n = 0.0;
  double prev_p = 1.0;
  for (const double e : kToleranceLadder) {  // 0.3 -> 0.05
    const auto point = optimal_suspicion_point(e);
    EXPECT_GT(static_cast<double>(point.n_m), prev_n);
    EXPECT_LT(point.p_m, prev_p);
    prev_n = static_cast<double>(point.n_m);
    prev_p = point.p_m;
  }
}

TEST(MinSamplesForDeath, RejectsDegenerateP) {
  EXPECT_DEATH((void)min_samples_for(0.0, 0.1), "p must be");
  EXPECT_DEATH((void)min_samples_for(1.0, 0.1), "p must be");
}

}  // namespace
}  // namespace parastack::stats
