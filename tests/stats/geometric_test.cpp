#include "stats/geometric.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace parastack::stats {
namespace {

TEST(Geometric, TailProbability) {
  EXPECT_DOUBLE_EQ(prob_at_least_k_consecutive(0.5, 3), 0.125);
  EXPECT_DOUBLE_EQ(prob_at_least_k_consecutive(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(prob_at_least_k_consecutive(0.9, 0), 1.0);
}

TEST(Geometric, PaperWorstCase) {
  // §3.3: with q <= 0.77, ceil(log_0.77 0.001) = 27 suspicions verify a
  // hang, hence the 30-observation set-switching period.
  EXPECT_EQ(consecutive_suspicions_required(0.77, 0.001), 27u);
}

TEST(Geometric, KnownValues) {
  EXPECT_EQ(consecutive_suspicions_required(0.1, 0.001), 3u);
  EXPECT_EQ(consecutive_suspicions_required(0.5, 0.001), 10u);
  // q = 0.316...: log_q(0.001) just over 6.
  EXPECT_EQ(consecutive_suspicions_required(0.3, 0.001), 6u);
}

TEST(Geometric, GuaranteeHolds) {
  // By construction q^k <= alpha for the returned k, and k is minimal.
  for (const double q : {0.05, 0.1, 0.3, 0.5, 0.77, 0.9}) {
    for (const double alpha : {0.05, 0.01, 0.001}) {
      const std::size_t k = consecutive_suspicions_required(q, alpha);
      EXPECT_LE(prob_at_least_k_consecutive(q, k), alpha + 1e-12);
      if (k > 1) {
        EXPECT_GT(prob_at_least_k_consecutive(q, k - 1), alpha - 1e-12);
      }
    }
  }
}

TEST(GeometricDeath, DomainChecks) {
  EXPECT_DEATH((void)consecutive_suspicions_required(1.0, 0.001), "q must be");
  EXPECT_DEATH((void)consecutive_suspicions_required(0.5, 0.0),
               "alpha must be");
}

}  // namespace
}  // namespace parastack::stats
