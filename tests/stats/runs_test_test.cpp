#include "stats/runs_test.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace parastack::stats {
namespace {

TEST(RunsPmf, SumsToOneOverSupport) {
  for (const auto [n1, n0] : {std::pair<std::size_t, std::size_t>{3, 5},
                              {7, 9},
                              {10, 10},
                              {1, 6},
                              {20, 20}}) {
    double total = 0.0;
    for (std::size_t r = 0; r <= n1 + n0; ++r) total += runs_pmf(r, n1, n0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "n1=" << n1 << " n0=" << n0;
  }
}

TEST(RunsPmf, KnownSmallValues) {
  // n1 = n0 = 2: arrangements of ++--: C(4,2) = 6 equally likely.
  // R=2: ++-- and --++ -> 2/6; R=3: +--+, -++- -> 2/6; R=4: +-+-, -+-+ -> 2/6.
  EXPECT_NEAR(runs_pmf(2, 2, 2), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(runs_pmf(3, 2, 2), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(runs_pmf(4, 2, 2), 2.0 / 6.0, 1e-12);
}

TEST(RunsPmf, ZeroOutsideSupport) {
  EXPECT_EQ(runs_pmf(0, 5, 5), 0.0);
  EXPECT_EQ(runs_pmf(1, 5, 5), 0.0);
  EXPECT_EQ(runs_pmf(11, 5, 5), 0.0);
  // With n1 < n0 the maximum run count is 2*n1 + 1.
  EXPECT_EQ(runs_pmf(16, 7, 9), 0.0);
  EXPECT_GT(runs_pmf(15, 7, 9), 0.0);
}

TEST(RunsCdf, MonotonicAndBounded) {
  double prev = 0.0;
  for (std::size_t r = 0; r <= 16; ++r) {
    const double c = runs_cdf(r, 7, 9);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(runs_cdf(16, 7, 9), 1.0, 1e-9);
}

TEST(RunsCriticalRegion, PaperWorkedExample) {
  // Paper §3.1: N1 = 7, N0 = 9 -> non-rejection region (4, 14); the
  // observed R = 4 must be rejected.
  const auto [lo, hi] = runs_critical_region(7, 9);
  EXPECT_EQ(lo, 4u);
  EXPECT_EQ(hi, 14u);
}

TEST(RunsCriticalRegion, SwedEisenhartPins) {
  // Published two-tailed 5% critical values (Swed & Eisenhart 1943 /
  // standard statistics tables): reject iff R <= lo or R >= hi.
  struct Pin {
    std::size_t n1, n0, lo, hi;
  };
  // Table entries (n1, n0): lower and upper critical values.
  const Pin pins[] = {
      {10, 10, 6, 16},
      {12, 12, 7, 19},
      {5, 5, 2, 10},
      {8, 8, 4, 14},
      {6, 10, 4, 13},  // asymmetric case
  };
  for (const auto& pin : pins) {
    const auto [lo, hi] = runs_critical_region(pin.n1, pin.n0);
    EXPECT_EQ(lo, pin.lo) << "n1=" << pin.n1 << " n0=" << pin.n0;
    EXPECT_EQ(hi, pin.hi) << "n1=" << pin.n1 << " n0=" << pin.n0;
  }
}

TEST(RunsCriticalRegion, TailsHoldAlphaHalf) {
  for (const auto [n1, n0] : {std::pair<std::size_t, std::size_t>{8, 13},
                              {15, 18},
                              {20, 20}}) {
    const auto [lo, hi] = runs_critical_region(n1, n0);
    EXPECT_LE(runs_cdf(lo, n1, n0), 0.025 + 1e-9);
    EXPECT_GT(runs_cdf(lo + 1, n1, n0), 0.025);
    double upper_tail = 0.0;
    for (std::size_t r = hi; r <= n1 + n0; ++r) upper_tail += runs_pmf(r, n1, n0);
    EXPECT_LE(upper_tail, 0.025 + 1e-9);
  }
}

TEST(CountRuns, Basics) {
  const std::vector<std::uint8_t> seq1 = {1, 1, 0, 0, 1};
  EXPECT_EQ(count_runs(seq1), 3u);
  const std::vector<std::uint8_t> seq2 = {1, 1, 1};
  EXPECT_EQ(count_runs(seq2), 1u);
  const std::vector<std::uint8_t> alternating = {1, 0, 1, 0, 1, 0};
  EXPECT_EQ(count_runs(alternating), 6u);
  EXPECT_EQ(count_runs(std::span<const std::uint8_t>{}), 0u);
}

TEST(RunsTest, PaperSequenceRejected) {
  // The 16-sample sequence from §3.1; boundary 0.44375, R = 4 -> reject.
  const std::vector<double> samples = {0.2, 0.1, 0.1, 0.2, 0.1, 0.1, 0.0, 0.0,
                                       0.8, 0.9, 1.0, 0.8, 0.9, 0.1, 0.9, 0.9};
  const auto result = runs_test(samples);
  EXPECT_EQ(result.n_pos, 7u);
  EXPECT_EQ(result.n_neg, 9u);
  EXPECT_EQ(result.runs, 4u);
  EXPECT_FALSE(result.random);
  EXPECT_FALSE(result.degenerate);
}

TEST(RunsTest, DegenerateWhenOneSided) {
  // Paper: N1 <= 1 or N0 <= 1 -> treat as non-random.
  const std::vector<double> nearly_constant = {1.0, 1.0, 1.0, 1.0, 1.0,
                                               1.0, 1.0, 0.0};
  const auto result = runs_test(nearly_constant);
  EXPECT_TRUE(result.degenerate);
  EXPECT_FALSE(result.random);
}

TEST(RunsTest, AlternatingSequenceRejectedAsTooManyRuns) {
  std::vector<double> samples;
  for (int i = 0; i < 30; ++i) samples.push_back(i % 2 == 0 ? 0.1 : 0.9);
  EXPECT_FALSE(runs_test(samples).random);
}

TEST(RunsTest, BlockSequenceRejectedAsTooFewRuns) {
  std::vector<double> samples(15, 0.1);
  samples.insert(samples.end(), 15, 0.9);
  EXPECT_FALSE(runs_test(samples).random);
}

TEST(RunsTest, LargeSampleNormalApproximationBranch) {
  // > 20 on both sides forces the normal-approximation path.
  util::Rng rng(7);
  std::vector<double> random_samples;
  for (int i = 0; i < 200; ++i) random_samples.push_back(rng.uniform());
  EXPECT_TRUE(runs_test(random_samples).random);

  std::vector<double> blocks(100, 0.1);
  blocks.insert(blocks.end(), 100, 0.9);
  EXPECT_FALSE(runs_test(blocks).random);
}

/// Property: across many random shuffles, the exact-test rejection rate
/// stays near the nominal 5% level.
TEST(RunsTest, FalseRejectionRateNearAlpha) {
  util::Rng rng(123);
  const int trials = 2000;
  int rejections = 0;
  int degenerate = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> samples;
    for (int i = 0; i < 16; ++i) samples.push_back(rng.uniform());
    const auto result = runs_test(samples);
    if (result.degenerate) {
      ++degenerate;
    } else if (!result.random) {
      ++rejections;
    }
  }
  EXPECT_LT(degenerate, trials / 10);
  const double rate =
      static_cast<double>(rejections) / static_cast<double>(trials - degenerate);
  // Exact test is conservative (discrete); the rate must be below ~5% and
  // not absurdly small.
  EXPECT_LT(rate, 0.06);
  EXPECT_GT(rate, 0.005);
}

struct RegionCase {
  std::size_t n1;
  std::size_t n0;
};

class RunsRegionSweep : public ::testing::TestWithParam<RegionCase> {};

TEST_P(RunsRegionSweep, RegionBracketsAreConsistent) {
  const auto [n1, n0] = GetParam();
  const auto [lo, hi] = runs_critical_region(n1, n0);
  EXPECT_GE(lo, 1u);
  EXPECT_LE(hi, n1 + n0 + 1);
  EXPECT_LT(lo + 1, hi);  // a non-empty acceptance region must exist
  // Observed run counts strictly inside the region are accepted.
  std::vector<std::uint8_t> coded;
  for (std::size_t i = 0; i < n1; ++i) coded.push_back(1);
  for (std::size_t i = 0; i < n0; ++i) coded.push_back(0);
  // Perfectly blocked -> 2 runs; must reject whenever 2 <= lo.
  const auto blocked = runs_test_coded(coded);
  if (2 <= lo) EXPECT_FALSE(blocked.random);
}

INSTANTIATE_TEST_SUITE_P(SmallTable, RunsRegionSweep,
                         ::testing::Values(RegionCase{5, 5}, RegionCase{5, 10},
                                           RegionCase{8, 8}, RegionCase{10, 15},
                                           RegionCase{12, 9}, RegionCase{16, 16},
                                           RegionCase{20, 20},
                                           RegionCase{18, 6}));

}  // namespace
}  // namespace parastack::stats
