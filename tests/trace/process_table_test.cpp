#include "trace/process_table.hpp"

#include <gtest/gtest.h>

#include "simmpi/action.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::trace {
namespace {

simmpi::World make_world(int nranks, std::uint64_t seed = 17) {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 5;
  profile->reference_ranks = nranks;
  profile->setup_time = 0;
  profile->phases = {
      {"w", sim::from_millis(1), 0.0, workloads::CommPattern::kNone, 0},
  };
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.platform = sim::Platform::tianhe2();  // 24 ranks/node
  config.seed = seed;
  config.background_slowdowns = false;
  return simmpi::World(config, workloads::make_factory(profile));
}

TEST(ProcessTable, PsShowsJobAndSystemProcesses) {
  auto world = make_world(48);
  ProcessTable table(world, "./xhpl", 3);
  const auto ps = table.ps_on_node(0);
  int job = 0;
  int other = 0;
  for (const auto& entry : ps) {
    (entry.command == "./xhpl" ? job : other)++;
  }
  EXPECT_EQ(job, 24);  // full node on Tianhe-2
  EXPECT_GT(other, 3);  // daemons are present and must be filtered out
}

TEST(ProcessTable, MappingRecoversTrueRanksOnEveryNode) {
  auto world = make_world(60);  // 3 nodes: 24 + 24 + 12
  ProcessTable table(world, "./lu.D.x", 5);
  for (int node = 0; node < table.nodes(); ++node) {
    const auto mapped = ProcessTable::map_ranks(
        table.ps_on_node(node), "./lu.D.x", node, table.ppn());
    ASSERT_FALSE(mapped.empty());
    for (const auto& m : mapped) {
      EXPECT_EQ(table.pid_of_rank(m.rank), m.pid)
          << "node " << node << " rank " << m.rank;
    }
  }
}

TEST(ProcessTable, MappingCoversAllRanksExactlyOnce) {
  auto world = make_world(50, 23);
  ProcessTable table(world, "./app", 7);
  std::vector<bool> seen(50, false);
  for (int node = 0; node < table.nodes(); ++node) {
    for (const auto& m : ProcessTable::map_ranks(table.ps_on_node(node),
                                                 "./app", node, table.ppn())) {
      ASSERT_GE(m.rank, 0);
      ASSERT_LT(m.rank, 50);
      EXPECT_FALSE(seen[static_cast<std::size_t>(m.rank)]);
      seen[static_cast<std::size_t>(m.rank)] = true;
    }
  }
  for (int r = 0; r < 50; ++r) EXPECT_TRUE(seen[static_cast<std::size_t>(r)]);
}

TEST(ProcessTable, CommandFilterIsExact) {
  auto world = make_world(24);
  ProcessTable table(world, "./xhpl", 11);
  // A different command name maps nothing.
  const auto mapped = ProcessTable::map_ranks(table.ps_on_node(0),
                                              "./other_app", 0, table.ppn());
  EXPECT_TRUE(mapped.empty());
}

TEST(ProcessTable, PartialLastNode) {
  auto world = make_world(30);  // node 1 hosts only ranks 24..29
  ProcessTable table(world, "./a.out", 13);
  const auto mapped = ProcessTable::map_ranks(table.ps_on_node(1), "./a.out",
                                              1, table.ppn());
  ASSERT_EQ(mapped.size(), 6u);
  EXPECT_EQ(mapped.front().rank, 24);
  EXPECT_EQ(mapped.back().rank, 29);
}

TEST(ProcessTableDeath, Bounds) {
  auto world = make_world(24);
  ProcessTable table(world, "./x", 1);
  EXPECT_DEATH((void)table.ps_on_node(5), "out of range");
  EXPECT_DEATH((void)table.pid_of_rank(99), "out of range");
}

}  // namespace
}  // namespace parastack::trace
