#include "trace/inspector.hpp"

#include <gtest/gtest.h>

#include "simmpi/action.hpp"
#include "simmpi/world.hpp"

namespace parastack::trace {
namespace {

using simmpi::Action;
using simmpi::Rank;

/// Rank 0 computes forever; rank 1 blocks in a recv that never matches;
/// rank 2 busy-waits forever.
simmpi::ProgramFactory mixed_factory() {
  return [](Rank rank, int, util::Rng) -> std::unique_ptr<simmpi::Program> {
    class P : public simmpi::Program {
     public:
      explicit P(Rank rank) : rank_(rank) {}
      Action next() override {
        if (rank_ == 0) {
          return Action::compute(sim::kMinute, 0.0, "long_compute");
        }
        if (rank_ == 1) return Action::hang_in_mpi(simmpi::MpiFunc::kRecv);
        if (step_++ == 0) return Action::irecv(0, 1, 64);
        return Action::test_loop("busy_spread");
      }
     private:
      Rank rank_;
      int step_ = 0;
    };
    return std::make_unique<P>(rank);
  };
}

simmpi::WorldConfig config3() {
  simmpi::WorldConfig config;
  config.nranks = 3;
  config.platform = sim::Platform::tianhe2();
  config.platform.noise_cv = 0.0;
  config.background_slowdowns = false;
  return config;
}

TEST(StackInspector, SnapshotsClassifyStates) {
  simmpi::World world(config3(), mixed_factory());
  world.start();
  world.engine().run_until(sim::from_millis(50));
  StackInspector inspector(world);

  const auto compute_snapshot = inspector.trace(0);
  EXPECT_FALSE(compute_snapshot.in_mpi);
  EXPECT_TRUE(compute_snapshot.innermost_mpi.empty());
  EXPECT_EQ(compute_snapshot.frames.back(), "long_compute");
  EXPECT_EQ(compute_snapshot.frames.front(), "main");

  const auto blocked_snapshot = inspector.trace(1);
  EXPECT_TRUE(blocked_snapshot.in_mpi);
  EXPECT_FALSE(blocked_snapshot.in_test_family());
}

TEST(StackInspector, BusyWaitTestFamilyDetection) {
  simmpi::World world(config3(), mixed_factory());
  world.start();
  StackInspector inspector(world);
  bool saw_test_family = false;
  for (int i = 0; i < 500 && !saw_test_family; ++i) {
    world.engine().run_until(world.engine().now() + sim::from_micros(40));
    const auto snapshot = inspector.trace(2);
    if (snapshot.in_mpi && snapshot.in_test_family()) saw_test_family = true;
  }
  EXPECT_TRUE(saw_test_family);
}

TEST(StackInspector, ChargesComputingTargets) {
  simmpi::World world(config3(), mixed_factory());
  world.start();
  world.engine().run_until(sim::from_millis(10));
  StackInspector::Config config;
  config.trace_cost_mean = sim::from_millis(3);
  config.trace_cost_cv = 0.0;
  StackInspector inspector(world, config);
  EXPECT_EQ(inspector.traces(), 0u);
  inspector.trace(0);
  inspector.trace(0);
  EXPECT_EQ(inspector.traces(), 2u);
  EXPECT_GE(inspector.total_cost_charged(), sim::from_millis(5));
}

TEST(StackInspector, TraceCostCalibratedToTable3) {
  // Paper Table 3: ~18220 traces cost 50.88 s -> ~2.8 ms per trace.
  const StackInspector::Config config;
  const double per_trace_ms = sim::to_millis(config.trace_cost_mean);
  EXPECT_NEAR(per_trace_ms, 50.88e3 / 18220.0, 0.3);
}

TEST(StackInspector, SnapshotTimestamps) {
  simmpi::World world(config3(), mixed_factory());
  world.start();
  world.engine().run_until(sim::from_millis(7));
  StackInspector inspector(world);
  const auto snapshot = inspector.trace(1);
  EXPECT_EQ(snapshot.when, world.engine().now());
  EXPECT_EQ(snapshot.rank, 1);
}

}  // namespace
}  // namespace parastack::trace
