#include "util/summary.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace parastack::util {
namespace {

TEST(Summary, EmptyDefaults) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleSampleVarianceIsZero) {
  Summary s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng(5);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Quantile, OrderStatisticsInterpolation) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.3), 5.0);
}

TEST(QuantileDeath, DomainChecks) {
  EXPECT_DEATH((void)quantile({}, 0.5), "empty");
  EXPECT_DEATH((void)quantile({1.0}, 1.5), "in \\[0,1\\]");
}

}  // namespace
}  // namespace parastack::util
