#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace parastack::util {
namespace {

/// The bitset and a std::vector<bool> reference must agree bit-for-bit.
void expect_matches(const DynamicBitset& bits,
                    const std::vector<bool>& reference) {
  ASSERT_EQ(bits.size(), reference.size());
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(bits.test(i), reference[i]) << "bit " << i;
    if (reference[i]) ++expected_count;
  }
  EXPECT_EQ(bits.count(), expected_count);
  EXPECT_EQ(bits.any(), expected_count > 0);
  EXPECT_EQ(bits.none(), expected_count == 0);
  // for_each_set walks exactly the set bits, ascending.
  std::vector<std::size_t> walked;
  bits.for_each_set([&walked](std::size_t i) { walked.push_back(i); });
  EXPECT_EQ(walked.size(), expected_count);
  std::size_t at = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (!reference[i]) continue;
    ASSERT_LT(at, walked.size());
    EXPECT_EQ(walked[at++], i);
  }
}

TEST(DynamicBitset, EmptySet) {
  DynamicBitset bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.any());
  bits.for_each_set([](std::size_t) { FAIL() << "empty set has no bits"; });
}

TEST(DynamicBitset, FullWorldSet) {
  // Odd size on purpose: the tail word has dead bits that must stay out
  // of count()/none().
  constexpr std::size_t kBits = 193;
  DynamicBitset bits;
  bits.assign(kBits, true);
  expect_matches(bits, std::vector<bool>(kBits, true));
  bits.clear();
  expect_matches(bits, std::vector<bool>(kBits, false));
}

TEST(DynamicBitset, RandomizedEquivalenceWithVectorBool) {
  Rng rng(0xb175e7);
  for (int round = 0; round < 8; ++round) {
    // Sizes straddle word boundaries: 0, 1, 63, 64, 65, ... plus odd ones.
    const std::size_t nbits = rng.uniform_int(300);
    DynamicBitset bits(nbits);
    std::vector<bool> reference(nbits, false);
    for (int op = 0; op < 2000 && nbits > 0; ++op) {
      const std::size_t i = rng.uniform_int(nbits);
      if (rng.bernoulli(0.5)) {
        bits.set(i);
        reference[i] = true;
      } else if (rng.bernoulli(0.5)) {
        bits.reset(i);
        reference[i] = false;
      } else {
        const bool value = rng.bernoulli(0.5);
        bits.set(i, value);
        reference[i] = value;
      }
    }
    expect_matches(bits, reference);
  }
}

TEST(DynamicBitset, ResizeKeepsLowBitsAndZeroFillsNewOnes) {
  DynamicBitset bits(70);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(69);
  bits.resize(65);  // drops bit 69, keeps 0/63/64
  EXPECT_EQ(bits.count(), 3u);
  bits.resize(200);  // regrown tail must come back zeroed
  EXPECT_EQ(bits.count(), 3u);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_FALSE(bits.test(69));
  EXPECT_FALSE(bits.test(199));
}

TEST(DynamicBitset, MillionRankSmokeStaysOnBitBudget) {
  // The SoA coverage mask is the per-rank hot state at extreme scale:
  // 1M ranks must cost ~1 bit each, not a byte or a word. Allow the
  // vector's allocation slack but pin the order of magnitude.
  constexpr std::size_t kRanks = 1u << 20;
  DynamicBitset bits(kRanks);
  constexpr std::size_t kExactBytes = kRanks / 8;
  EXPECT_GE(bits.bytes_capacity(), kExactBytes);
  EXPECT_LE(bits.bytes_capacity(), 2 * kExactBytes)
      << "coverage mask exceeds the bits-per-rank budget";

  // Sparse usage pattern of the sampling path: mark C << P ranks, count,
  // walk, clear — no reallocation afterwards.
  const std::size_t before = bits.bytes_capacity();
  Rng rng(7);
  for (int sample = 0; sample < 50; ++sample) {
    for (int c = 0; c < 512; ++c) bits.set(rng.uniform_int(kRanks));
    EXPECT_GT(bits.count(), 0u);
    bits.clear();
    EXPECT_TRUE(bits.none());
  }
  EXPECT_EQ(bits.bytes_capacity(), before);
}

TEST(DynamicBitset, WordsExposeTheLayout) {
  DynamicBitset bits(128);
  bits.set(0);
  bits.set(65);
  ASSERT_EQ(bits.words().size(), 2u);
  EXPECT_EQ(bits.words()[0], std::uint64_t{1});
  EXPECT_EQ(bits.words()[1], std::uint64_t{2});
}

}  // namespace
}  // namespace parastack::util
