#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace parastack::util {
namespace {

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, AddsToCorrectBucket) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeTrackedSeparately) {
  // Out-of-range samples must not be folded into the edge buckets — that
  // silently corrupts the tails. They land in explicit flow counters.
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  h.add(1.0);  // the range is half-open: hi itself overflows
  h.add(0.25);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.in_range(), 1u);
}

TEST(Histogram, AsciiRendersFlowRows) {
  Histogram h(0.0, 2.0, 2);
  h.add(-1.0);
  h.add(5.0);
  h.add(5.5);
  h.add(0.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);  // underflow + 2 buckets + overflow
  EXPECT_NE(art.find("<"), std::string::npos);
  EXPECT_NE(art.find(">="), std::string::npos);
}

TEST(Histogram, AsciiOmitsEmptyFlowRows) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_EQ(art.find(">="), std::string::npos);
}

TEST(Histogram, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramDeath, InvalidConstruction) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "non-empty");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one");
}

TEST(Histogram, ExactEdgeSamplesLandInTheEdgeBucket) {
  // bucket_lo(b) is the published inclusive lower edge, but the float
  // division (x - lo) / width can round a sample sitting exactly on it
  // into bucket b-1 (e.g. width = 1/3). add() must agree with the edges.
  Histogram h(0.0, 1.0, 3);
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    h.add(h.bucket_lo(b));
  }
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    EXPECT_EQ(h.count(b), 1u) << "edge sample strayed from bucket " << b;
  }
}

TEST(Histogram, PropertyCountsConserveAndMatchEdges) {
  Rng rng(0x5150ULL);
  for (int trial = 0; trial < 50; ++trial) {
    const double lo = rng.uniform(-100.0, 100.0);
    const double hi = lo + rng.uniform(0.5, 200.0);
    const auto buckets =
        static_cast<std::size_t>(rng.uniform_int(std::int64_t{1}, 40));
    Histogram h(lo, hi, buckets);
    std::vector<std::size_t> expected(buckets, 0);
    std::size_t expected_under = 0;
    std::size_t expected_over = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      // Mix interior draws with exact-edge hits (the off-by-one trap).
      double x;
      const double kind = rng.uniform();
      if (kind < 0.2) {
        x = h.bucket_lo(static_cast<std::size_t>(
            rng.uniform_int(std::uint64_t{buckets})));
      } else {
        x = rng.uniform(lo - 10.0, hi + 10.0);
      }
      h.add(x);
      if (x < lo) {
        ++expected_under;
      } else if (x >= hi) {
        ++expected_over;
      } else {
        // Reference classification: scan the published edges.
        std::size_t b = buckets - 1;
        for (std::size_t j = 0; j + 1 < buckets; ++j) {
          if (x >= h.bucket_lo(j) && x < h.bucket_lo(j + 1)) {
            b = j;
            break;
          }
        }
        ++expected[b];
      }
    }
    EXPECT_EQ(h.total(), static_cast<std::size_t>(n));
    EXPECT_EQ(h.underflow(), expected_under);
    EXPECT_EQ(h.overflow(), expected_over);
    EXPECT_EQ(h.in_range(),
              static_cast<std::size_t>(n) - expected_under - expected_over);
    for (std::size_t b = 0; b < buckets; ++b) {
      EXPECT_EQ(h.count(b), expected[b])
          << "trial " << trial << " bucket " << b;
    }
  }
}

TEST(Histogram, QuantilesAreMonotoneAndInRange) {
  Rng rng(77);
  Histogram h(0.0, 10.0, 16);
  for (int i = 0; i < 300; ++i) {
    h.add(rng.uniform(-1.0, 11.0));  // include some flow mass
  }
  ASSERT_GT(h.in_range(), 0u);
  double prev = h.quantile(0.0);
  EXPECT_GE(prev, 0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double q = h.quantile(p);
    EXPECT_GE(q, prev) << "quantile not monotone at p=" << p;
    prev = q;
  }
  EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileInterpolatesWithinASingleBucket) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 4; ++i) h.add(3.5);  // all mass in bucket [3, 4)
  EXPECT_GE(h.quantile(0.0), 3.0);
  EXPECT_LE(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_LT(h.quantile(0.25), h.quantile(1.0));
}

}  // namespace
}  // namespace parastack::util
