#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace parastack::util {
namespace {

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, AddsToCorrectBucket) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeTrackedSeparately) {
  // Out-of-range samples must not be folded into the edge buckets — that
  // silently corrupts the tails. They land in explicit flow counters.
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  h.add(1.0);  // the range is half-open: hi itself overflows
  h.add(0.25);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.in_range(), 1u);
}

TEST(Histogram, AsciiRendersFlowRows) {
  Histogram h(0.0, 2.0, 2);
  h.add(-1.0);
  h.add(5.0);
  h.add(5.5);
  h.add(0.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);  // underflow + 2 buckets + overflow
  EXPECT_NE(art.find("<"), std::string::npos);
  EXPECT_NE(art.find(">="), std::string::npos);
}

TEST(Histogram, AsciiOmitsEmptyFlowRows) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_EQ(art.find(">="), std::string::npos);
}

TEST(Histogram, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramDeath, InvalidConstruction) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "non-empty");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one");
}

}  // namespace
}  // namespace parastack::util
