#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace parastack::util {
namespace {

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, AddsToCorrectBucket) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const std::string art = h.ascii(10);
  int lines = 0;
  for (const char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramDeath, InvalidConstruction) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "non-empty");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one");
}

}  // namespace
}  // namespace parastack::util
