#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace parastack::util {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(11);
  bool saw_zero = false;
  bool saw_max = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    if (v == 0) saw_zero = true;
    if (v == 9) saw_max = true;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMeanCv) {
  Rng rng(19);
  const double target_mean = 10.0;
  const double cv = 0.25;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_mean_cv(target_mean, cv);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, target_mean, 0.1);
  EXPECT_NEAR(std::sqrt(var) / mean, cv, 0.02);
}

TEST(Rng, LognormalZeroCvIsExact) {
  Rng rng(21);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(3.5, 0.0), 3.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 50000.0, 4.0, 0.1);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngDeath, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.uniform_int(0), "n > 0");
}

}  // namespace
}  // namespace parastack::util
