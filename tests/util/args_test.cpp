#include "util/args.hpp"

#include <gtest/gtest.h>

namespace parastack::util {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> full = {"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, KeyValuePairs) {
  const auto args = make({"--bench", "LU", "--ranks", "256"});
  EXPECT_TRUE(args.has("bench"));
  EXPECT_EQ(args.get("bench"), "LU");
  EXPECT_EQ(args.get_int("ranks", 0), 256);
}

TEST(Args, EqualsSyntax) {
  const auto args = make({"--platform=Tardis", "--alpha=0.01"});
  EXPECT_EQ(args.get("platform"), "Tardis");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.01);
}

TEST(Args, BareFlags) {
  const auto args = make({"--no-parastack", "--verbose", "--seed", "4"});
  EXPECT_TRUE(args.has("no-parastack"));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("no-parastack"), "");
  EXPECT_EQ(args.get_int("seed", 0), 4);
}

TEST(Args, FlagFollowedByFlagIsBare) {
  const auto args = make({"--a", "--b", "value"});
  EXPECT_EQ(args.get("a"), "");
  EXPECT_EQ(args.get("b"), "value");
}

TEST(Args, Fallbacks) {
  const auto args = make({});
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(Args, Positionals) {
  const auto args = make({"run", "--x", "1", "extra"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "run");
  EXPECT_EQ(args.positionals()[1], "extra");
}

TEST(Args, UnknownKeyDetection) {
  const auto args = make({"--bench", "LU", "--typo-flag", "x"});
  const auto unknown = args.unknown_keys({"bench", "ranks"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo-flag");
}

TEST(ArgsDeath, NumericValidation) {
  const auto args = make({"--ranks", "abc"});
  EXPECT_DEATH((void)args.get_int("ranks", 0), "integer");
}

}  // namespace
}  // namespace parastack::util
