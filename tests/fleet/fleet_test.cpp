// Fleet mode end to end: the single-tenant fleet must be byte-identical to
// the legacy single-job path, arrival schedules and per-tenant journals
// must be invariant under co-tenants (the isolation oracle), and admission
// against the bounded monitor pool must refuse without burning anything.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fleet/fleet.hpp"
#include "obs/journal.hpp"
#include "obs/perf.hpp"

namespace parastack::fleet {
namespace {

harness::RunConfig small_lu(std::uint64_t seed = 7) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.fault = faults::FaultType::kComputeHang;
  config.background_slowdowns = false;
  return config;
}

int monitors_for(const harness::RunConfig& config) {
  const int cores = config.platform.cores_per_node;
  return (config.nranks + cores - 1) / cores;
}

TEST(Fleet, SingleTenantJournalIsByteIdenticalToTheLegacyPath) {
  // The correctness anchor: --fleet=1 must not perturb a single byte of the
  // legacy single-job journal — no fleet_admit lines, no reordering, no
  // altered RNG stream.
  std::ostringstream legacy_out;
  {
    obs::JsonlJournal journal(legacy_out);
    harness::RunConfig config = small_lu();
    config.telemetry = &journal;
    harness::run_one(config);
  }

  std::ostringstream fleet_out;
  FleetResult result;
  {
    obs::JsonlJournal journal(fleet_out);
    FleetConfig config;
    config.base = small_lu();
    config.arrivals.jobs = 1;
    config.telemetry = &journal;
    result = run_fleet(config);
  }

  ASSERT_FALSE(legacy_out.str().empty());
  EXPECT_EQ(legacy_out.str(), fleet_out.str());
  EXPECT_EQ(fleet_out.str().find("fleet_admit"), std::string::npos);
  ASSERT_EQ(result.tenants.size(), 1u);
  EXPECT_TRUE(result.tenants[0].admitted);
  EXPECT_EQ(result.bill.jobs, 1);
}

TEST(Fleet, SingleTenantRegistersNoFleetCounters) {
  obs::perf::ProfileRegistry registry;
  FleetConfig config;
  config.base = small_lu();
  config.arrivals.jobs = 1;
  config.perf = &registry;
  run_fleet(config);
  for (const auto& [name, value] : registry.counter_snapshot()) {
    EXPECT_EQ(name.rfind("fleet.", 0), std::string::npos)
        << name << " leaked into a single-tenant fleet";
  }
}

TEST(Fleet, MultiTenantRegistersFleetCounters) {
  obs::perf::ProfileRegistry registry;
  FleetConfig config;
  config.base = small_lu();
  config.arrivals.jobs = 2;
  config.perf = &registry;
  const FleetResult result = run_fleet(config);
  const auto snapshot = registry.counter_snapshot();
  EXPECT_EQ(snapshot.at("fleet.admitted"), 2u);
  EXPECT_GT(snapshot.at("fleet.ingest.samples"), 0u);
  EXPECT_EQ(snapshot.at("fleet.ingest.samples"), result.ingest.pushed);
}

TEST(Fleet, ArrivalPrefixIsInvariantUnderFleetSize) {
  // Tenant K's seed, gap, and workload are tenant-indexed hashes, never a
  // shared rolling stream: growing the fleet must not move earlier tenants.
  const harness::RunConfig base = small_lu();
  for (ArrivalModel model : {ArrivalModel::kPoisson, ArrivalModel::kTrace}) {
    ArrivalConfig small;
    small.jobs = 3;
    small.model = model;
    ArrivalConfig large = small;
    large.jobs = 6;
    const auto few = generate_arrivals(small, base);
    const auto many = generate_arrivals(large, base);
    ASSERT_EQ(few.size(), 3u);
    ASSERT_EQ(many.size(), 6u);
    for (std::size_t i = 0; i < few.size(); ++i) {
      EXPECT_EQ(few[i].at, many[i].at) << arrival_model_name(model);
      EXPECT_EQ(few[i].config.seed, many[i].config.seed);
      EXPECT_EQ(few[i].config.bench, many[i].config.bench);
      EXPECT_EQ(few[i].config.input, many[i].config.input);
    }
  }
  // Tenant 0 is always the base job itself at t = 0.
  const auto arrivals = generate_arrivals({}, base);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].at, 0);
  EXPECT_EQ(arrivals[0].config.seed, base.seed);
}

TEST(Fleet, TenantJournalsAreInvariantUnderCoTenants) {
  // The tenant-isolation oracle: a tenant's own journal bytes must not
  // depend on who else shares the fleet.
  const auto journals_of = [](int jobs) {
    FleetConfig config;
    config.base = small_lu();
    config.arrivals.jobs = jobs;
    config.jobs = 2;  // exercise the parallel tenant fan-out too
    config.capture_tenant_journals = true;
    return run_fleet(config).tenant_journals;
  };
  const auto two = journals_of(2);
  const auto three = journals_of(3);
  ASSERT_EQ(two.size(), 2u);
  ASSERT_EQ(three.size(), 3u);
  for (std::size_t i = 0; i < two.size(); ++i) {
    ASSERT_FALSE(two[i].empty());
    EXPECT_EQ(two[i], three[i]) << "tenant " << i;
  }
}

TEST(Fleet, AdmissionRefusesWithoutBurnWhenThePoolIsExhausted) {
  FleetConfig config;
  config.base = small_lu();
  config.arrivals.jobs = 2;
  config.arrivals.model = ArrivalModel::kTrace;
  config.arrivals.mean_interarrival = sim::kMillisecond;  // arrive mid-run
  config.monitor_pool = monitors_for(config.base);  // room for one tenant
  config.capture_tenant_journals = true;
  std::ostringstream out;
  obs::JsonlJournal journal(out);
  config.telemetry = &journal;
  const FleetResult result = run_fleet(config);

  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_TRUE(result.tenants[0].admitted);
  EXPECT_FALSE(result.tenants[1].admitted);
  // Refusal-without-burn: the refused tenant is terminal at its arrival
  // instant, billed nothing, and contributes no journal or ingest traffic.
  EXPECT_EQ(result.bill.jobs, 1);
  EXPECT_EQ(result.bill.refused, 1);
  EXPECT_EQ(result.pool_refusals, 1u);
  ASSERT_EQ(result.tenants[1].lifecycle.size(), 1u);
  EXPECT_EQ(result.tenants[1].lifecycle[0].from, sched::JobState::kPending);
  EXPECT_EQ(result.tenants[1].lifecycle[0].to, sched::JobState::kRefused);
  EXPECT_EQ(result.tenants[1].lifecycle[0].at, result.tenants[1].arrival);
  EXPECT_TRUE(result.tenant_journals[1].empty());
  EXPECT_EQ(result.tenant_ingest[1].samples, 0u);
  // The combined stream still narrates the refusal.
  EXPECT_NE(out.str().find("fleet_admit"), std::string::npos);
  EXPECT_NE(out.str().find("\"admitted\":false"), std::string::npos);
}

TEST(Fleet, PoolSlotsReleaseWhenTheOwningJobEnds) {
  // Learn the first job's span, then schedule the second tenant after it:
  // the same one-tenant pool must now admit both.
  FleetConfig probe;
  probe.base = small_lu();
  probe.arrivals.jobs = 1;
  const sim::Time span = run_fleet(probe).makespan;
  ASSERT_GT(span, 0);

  FleetConfig config;
  config.base = small_lu();
  config.arrivals.jobs = 2;
  config.arrivals.model = ArrivalModel::kTrace;
  config.arrivals.mean_interarrival = span + sim::kSecond;
  config.monitor_pool = monitors_for(config.base);
  const FleetResult result = run_fleet(config);
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_TRUE(result.tenants[0].admitted);
  EXPECT_TRUE(result.tenants[1].admitted);
  EXPECT_EQ(result.bill.jobs, 2);
  EXPECT_EQ(result.pool_refusals, 0u);
  EXPECT_EQ(result.pool_high_water, monitors_for(config.base));
  EXPECT_GE(result.makespan, result.tenants[1].arrival);
}

TEST(Fleet, BillRollsUpEveryAdmittedTenant) {
  FleetConfig config;
  config.base = small_lu();
  config.arrivals.jobs = 4;
  const FleetResult result = run_fleet(config);
  ASSERT_EQ(result.tenants.size(), 4u);
  EXPECT_EQ(result.bill.jobs, 4);
  EXPECT_EQ(result.bill.refused, 0);
  EXPECT_EQ(result.bill.completed + result.bill.killed + result.bill.expired +
                result.bill.gave_up,
            4);
  EXPECT_GT(result.bill.su_billed, 0.0);
  // Every tenant carries an audited lifecycle that reached a terminal state
  // on the fleet timeline.
  for (const TenantResult& tenant : result.tenants) {
    ASSERT_FALSE(tenant.lifecycle.empty());
    EXPECT_EQ(tenant.lifecycle.front().from, sched::JobState::kPending);
    const sched::JobState last = tenant.lifecycle.back().to;
    // Recovery is off in this fleet, so a detected hang ends at the kill;
    // otherwise the audited path must reach a terminal state.
    EXPECT_TRUE(last == sched::JobState::kCompleted ||
                last == sched::JobState::kGaveUp ||
                last == sched::JobState::kExpired ||
                last == sched::JobState::kKilled)
        << sched::job_state_name(last);
    EXPECT_GE(tenant.lifecycle.front().at, tenant.arrival);
  }
  // The fleet ingest ledger saw every admitted tenant's stream.
  EXPECT_GT(result.ingest.pushed, 0u);
  EXPECT_EQ(result.ingest.pushed, result.ingest.processed);
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(result.tenant_ingest[static_cast<std::size_t>(t)].samples, 0u);
  }
}

TEST(Fleet, ResultIsDeterministicAcrossWorkerCounts) {
  const auto run_with = [](int workers) {
    FleetConfig config;
    config.base = small_lu();
    config.arrivals.jobs = 3;
    config.jobs = workers;
    config.capture_tenant_journals = true;
    return run_fleet(config);
  };
  const FleetResult serial = run_with(1);
  const FleetResult parallel = run_with(3);
  ASSERT_EQ(serial.tenants.size(), parallel.tenants.size());
  EXPECT_EQ(serial.makespan, parallel.makespan);
  EXPECT_DOUBLE_EQ(serial.bill.su_billed, parallel.bill.su_billed);
  EXPECT_EQ(serial.ingest.pushed, parallel.ingest.pushed);
  EXPECT_EQ(serial.ingest.last_done, parallel.ingest.last_done);
  for (std::size_t i = 0; i < serial.tenants.size(); ++i) {
    EXPECT_EQ(serial.tenant_journals[i], parallel.tenant_journals[i]);
    EXPECT_EQ(serial.tenants[i].end_at, parallel.tenants[i].end_at);
  }
}

}  // namespace
}  // namespace parastack::fleet
