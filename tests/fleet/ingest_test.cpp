// The fleet ingestion layer's edge cases: size-vs-tick batch triggers,
// producer backpressure at the queue bound, the per-tenant starvation
// guard, quorum state, and full determinism of the ledgers.

#include <gtest/gtest.h>

#include "fleet/ingest.hpp"
#include "obs/perf.hpp"
#include "util/rng.hpp"

namespace parastack::fleet {
namespace {

constexpr sim::Time kMs = sim::kMillisecond;

SampleRecord sample(int tenant, sim::Time at, double coverage = 1.0,
                    bool verdict = false) {
  SampleRecord r;
  r.tenant = tenant;
  r.at = at;
  r.coverage = coverage;
  r.verdict = verdict;
  return r;
}

TEST(Ingest, SizeFlushTriggersWhenTheBatchFills) {
  IngestConfig config;
  config.queue_bound = 8;
  config.batch_max = 4;
  config.batch_tick = 250 * kMs;
  config.service_per_sample = 1 * kMs;
  Ingestor ingestor(config, 1);
  for (sim::Time at : {10 * kMs, 20 * kMs, 30 * kMs, 40 * kMs}) {
    ingestor.push(sample(0, at));
  }
  ingestor.finish();

  const IngestStats& stats = ingestor.stats();
  EXPECT_EQ(stats.pushed, 4u);
  EXPECT_EQ(stats.processed, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.size_flushes, 1u);
  EXPECT_EQ(stats.tick_flushes, 0u);
  // The batch became due when its 4th record arrived (40 ms), well before
  // the 250 ms tick; records complete 1 ms apart behind the flush.
  EXPECT_EQ(stats.first_at, 10 * kMs);
  EXPECT_EQ(stats.last_done, 44 * kMs);
  const TenantIngest& ledger = ingestor.tenant(0);
  EXPECT_EQ(ledger.samples, 4u);
  EXPECT_DOUBLE_EQ(ledger.latency_ms.max(), 31.0);  // 41 ms done - 10 ms at
  EXPECT_DOUBLE_EQ(ledger.latency_ms.min(), 4.0);   // 44 ms done - 40 ms at
}

TEST(Ingest, TickFlushFiresOnTheBoundaryWhenTheBatchStaysSmall) {
  IngestConfig config;
  config.batch_max = 64;
  config.batch_tick = 250 * kMs;
  config.service_per_sample = 1 * kMs;
  Ingestor ingestor(config, 1);
  ingestor.push(sample(0, 10 * kMs));
  ingestor.push(sample(0, 20 * kMs));
  ingestor.finish();

  const IngestStats& stats = ingestor.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.size_flushes, 0u);
  EXPECT_EQ(stats.tick_flushes, 1u);
  // The oldest record arrived at 10 ms, so the batch flushed at the first
  // tick boundary after it: 250 ms. Completions follow 1 ms apart.
  EXPECT_EQ(stats.last_done, 252 * kMs);
}

TEST(Ingest, RecordOnTheTickBoundaryFlushesImmediately) {
  IngestConfig config;
  config.batch_max = 64;
  config.batch_tick = 250 * kMs;
  config.service_per_sample = 1 * kMs;
  Ingestor ingestor(config, 1);
  ingestor.push(sample(0, 250 * kMs));
  ingestor.finish();
  EXPECT_EQ(ingestor.stats().tick_flushes, 1u);
  EXPECT_EQ(ingestor.stats().last_done, 251 * kMs);
}

TEST(Ingest, BackpressureEngagesAtTheQueueBound) {
  IngestConfig config;
  config.queue_bound = 4;
  config.batch_max = 2;
  config.batch_tick = 1000 * kMs;  // keep the tick out of the way
  config.service_per_sample = 10 * kMs;
  Ingestor ingestor(config, 1);

  // Seven records burst in at t = 1 ms. The first pair flushes on the spot
  // (size trigger), occupying the server until 21 ms; the next four fill
  // the queue to its bound while the server is busy.
  for (int i = 0; i < 6; ++i) ingestor.push(sample(0, 1 * kMs));
  EXPECT_EQ(ingestor.stats().backpressure_waits, 0u);
  EXPECT_EQ(ingestor.stats().queue_high_water, 4u);

  // The 7th push finds the queue full: the producer blocks until the next
  // due flush (the size-triggered batch waiting on the busy server, due at
  // 21 ms) drains a slot — a 20 ms stall charged to backpressure.
  ingestor.push(sample(0, 1 * kMs));
  const IngestStats& mid = ingestor.stats();
  EXPECT_EQ(mid.backpressure_waits, 1u);
  EXPECT_EQ(mid.backpressure_wait_total, 20 * kMs);

  ingestor.finish();
  const IngestStats& stats = ingestor.stats();
  EXPECT_EQ(stats.pushed, 7u);
  EXPECT_EQ(stats.processed, 7u);
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.size_flushes, 3u);
  // The last record entered at the 21 ms flush, so its lone batch waits for
  // the next tick boundary (1000 ms) and completes one service later.
  EXPECT_EQ(stats.tick_flushes, 1u);
  EXPECT_EQ(stats.last_done, 1010 * kMs);
  EXPECT_EQ(stats.queue_high_water, 4u);
}

TEST(Ingest, StarvationGuardDefersTheFloodingTenantOnly) {
  IngestConfig config;
  config.queue_bound = 200;
  config.batch_max = 100;       // no size flushes: the tick drives service
  config.batch_tick = 100 * kMs;
  config.service_per_sample = 1 * kMs;
  config.tenant_window = 2;
  Ingestor ingestor(config, 2);

  // Tenant 0 floods five records; only its window of two reaches the
  // central queue, the rest wait in its side queue.
  for (int i = 0; i < 5; ++i) ingestor.push(sample(0, 1 * kMs));
  // Tenant 1's single record still enters the central queue directly.
  ingestor.push(sample(1, 2 * kMs));
  ingestor.finish();

  const IngestStats& stats = ingestor.stats();
  EXPECT_EQ(stats.pushed, 6u);
  EXPECT_EQ(stats.processed, 6u);
  EXPECT_EQ(stats.deferred, 3u);
  EXPECT_EQ(ingestor.tenant(0).deferred, 3u);
  EXPECT_EQ(ingestor.tenant(1).deferred, 0u);
  // The victim tenant's record rides the first tick flush — its latency is
  // bounded by the tick plus its batch position, while the flooding
  // tenant's tail waits through its own deferred promotions.
  EXPECT_LE(ingestor.tenant(1).latency_ms.max(),
            sim::to_seconds(config.batch_tick) * 1e3 + 3.0);
  EXPECT_GT(ingestor.tenant(0).latency_ms.max(),
            ingestor.tenant(1).latency_ms.max());
}

TEST(Ingest, QuorumStreakFlagsAndClearsDegradedState) {
  IngestConfig config;
  config.quorum = 0.5;
  config.quorum_streak = 3;
  Ingestor ingestor(config, 1);
  sim::Time at = 0;
  const auto low = [&] { ingestor.push(sample(0, at += kMs, 0.4)); };
  const auto high = [&] { ingestor.push(sample(0, at += kMs, 0.9)); };

  low(); low();
  EXPECT_FALSE(ingestor.tenant(0).degraded);
  low();  // third consecutive low-coverage record trips the flag
  EXPECT_TRUE(ingestor.tenant(0).degraded);
  EXPECT_EQ(ingestor.tenant(0).degraded_entries, 1u);
  high();  // recovery clears the streak and the flag
  EXPECT_FALSE(ingestor.tenant(0).degraded);
  low(); low(); low();  // a second full streak is a second entry
  EXPECT_EQ(ingestor.tenant(0).degraded_entries, 2u);
  ingestor.finish();
}

TEST(Ingest, VerdictRecordsFeedTheDetectionLedger) {
  IngestConfig config;
  config.batch_max = 2;
  config.service_per_sample = 1 * kMs;
  Ingestor ingestor(config, 1);
  ingestor.push(sample(0, 10 * kMs));
  ingestor.push(sample(0, 20 * kMs, 1.0, true));
  ingestor.push(sample(0, 30 * kMs, 1.0, true));
  ingestor.finish();

  const TenantIngest& ledger = ingestor.tenant(0);
  EXPECT_EQ(ledger.verdicts, 2u);
  EXPECT_EQ(ledger.verdict_delay_ms.count(), 2u);
  ASSERT_TRUE(ledger.first_verdict_done.has_value());
  // The first verdict rode the size-triggered pair flushed at 20 ms, in
  // batch position 2.
  EXPECT_EQ(*ledger.first_verdict_done, 22 * kMs);
}

TEST(Ingest, PerfCountersRegisterOnlyWhenARegistryIsGiven) {
  IngestConfig config;
  config.batch_max = 2;
  obs::perf::ProfileRegistry registry;
  Ingestor with(config, 2, &registry);
  with.push(sample(0, kMs));
  with.push(sample(1, kMs));
  with.finish();
  const auto snapshot = registry.counter_snapshot();
  EXPECT_EQ(snapshot.at("fleet.ingest.samples"), 2u);
  EXPECT_EQ(snapshot.at("fleet.ingest.batches"), 1u);
  EXPECT_EQ(snapshot.at("fleet.ingest.queue_depth.hw"), 2u);

  // Null registry: the same machine runs without any instrumentation.
  Ingestor without(config, 2);
  without.push(sample(0, kMs));
  without.finish();
  EXPECT_EQ(without.stats().processed, 1u);
}

TEST(Ingest, LedgersAreAPureFunctionOfTheInputStream) {
  IngestConfig config;
  config.queue_bound = 16;
  config.batch_max = 4;
  config.batch_tick = 50 * kMs;
  config.service_per_sample = 3 * kMs;
  config.tenant_window = 5;

  const auto drive = [&](Ingestor& ingestor) {
    util::Rng rng(2026);
    sim::Time at = 0;
    for (int i = 0; i < 500; ++i) {
      at += static_cast<sim::Time>(rng.uniform_int(0, 4)) * kMs;
      ingestor.push(sample(static_cast<int>(rng.uniform_int(0, 2)), at,
                           rng.uniform(), rng.uniform_int(0, 20) == 0));
    }
    ingestor.finish();
  };

  Ingestor a(config, 3), b(config, 3);
  drive(a);
  drive(b);
  EXPECT_EQ(a.stats().processed, 500u);
  EXPECT_EQ(a.stats().batches, b.stats().batches);
  EXPECT_EQ(a.stats().size_flushes, b.stats().size_flushes);
  EXPECT_EQ(a.stats().tick_flushes, b.stats().tick_flushes);
  EXPECT_EQ(a.stats().backpressure_waits, b.stats().backpressure_waits);
  EXPECT_EQ(a.stats().backpressure_wait_total,
            b.stats().backpressure_wait_total);
  EXPECT_EQ(a.stats().deferred, b.stats().deferred);
  EXPECT_EQ(a.stats().queue_high_water, b.stats().queue_high_water);
  EXPECT_EQ(a.stats().last_done, b.stats().last_done);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(a.tenant(t).samples, b.tenant(t).samples);
    EXPECT_EQ(a.tenant(t).deferred, b.tenant(t).deferred);
    EXPECT_EQ(a.tenant(t).verdicts, b.tenant(t).verdicts);
    EXPECT_DOUBLE_EQ(a.tenant(t).latency_ms.mean(),
                     b.tenant(t).latency_ms.mean());
    EXPECT_EQ(a.tenant(t).degraded_entries, b.tenant(t).degraded_entries);
  }
}

}  // namespace
}  // namespace parastack::fleet
