// The multi-attempt recovery driver, end to end through run_one(): a
// detector kill rolls the job back (or fails over) and drives it to
// completion, with per-attempt provenance in RunResult::attempts and the
// legacy single-attempt surface (finish_time, end_time, accessors)
// keeping its exact pre-recovery meaning when the feature is off.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/runner.hpp"
#include "obs/journal.hpp"

namespace parastack::harness {
namespace {

RunConfig small_lu(std::uint64_t seed = 1) {
  RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(RecoveryRunner, OffKeepsTheLegacyResultShape) {
  // Satellite regression: with recovery off, the multi-attempt surface must
  // be empty and the compat accessors must alias the legacy fields exactly.
  auto config = small_lu(3);
  config.fault = faults::FaultType::kComputeHang;
  const auto result = run_one(config);
  EXPECT_FALSE(result.recovery.enabled);
  EXPECT_TRUE(result.attempts.empty());
  EXPECT_EQ(result.job_end_time(), result.end_time);
  EXPECT_EQ(result.job_finish_time(), result.finish_time);
  // With no attempts recorded, the first attempt IS the run.
  EXPECT_EQ(result.first_attempt_end_time(), result.end_time);
}

TEST(RecoveryRunner, CkptRecoversAHangRunToCompletion) {
  auto config = small_lu(3);
  config.fault = faults::FaultType::kComputeHang;
  config.recovery.policy = recover::RecoveryPolicy::kCheckpointRestart;
  config.recovery.checkpoint_interval = 30 * sim::kSecond;
  const auto result = run_one(config);

  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.recovery.enabled);
  EXPECT_TRUE(result.recovery.recovered);
  EXPECT_FALSE(result.recovery.gave_up);
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_EQ(result.recovery.attempts_used, 2);
  EXPECT_GT(result.recovery.checkpoints_taken, 0u);
  EXPECT_EQ(result.recovery.overhead_total,
            config.recovery.restart_cost);

  const auto& first = result.attempts[0];
  const auto& second = result.attempts[1];
  EXPECT_TRUE(first.killed);
  EXPECT_FALSE(first.completed);
  EXPECT_EQ(first.start_time, 0);
  EXPECT_TRUE(second.completed);
  // The restarted attempt begins after the kill plus the restart cost and
  // resumes from the last periodic checkpoint, not from scratch.
  EXPECT_EQ(second.start_time,
            first.end_time + config.recovery.restart_cost);
  EXPECT_GT(second.resumed_from, 0);
  EXPECT_LE(second.resumed_from, first.end_time);

  // Accessors describe the FINAL attempt; the first attempt's end is still
  // reachable explicitly.
  EXPECT_EQ(result.first_attempt_end_time(), first.end_time);
  EXPECT_EQ(result.job_end_time(), second.end_time);
  ASSERT_TRUE(result.job_finish_time().has_value());
  EXPECT_GT(*result.job_finish_time(), first.end_time);
  // The job still finished inside its original allocation.
  EXPECT_LT(*result.finish_time, result.walltime);
}

TEST(RecoveryRunner, SpareFailoverResumesWarm) {
  auto config = small_lu(3);
  config.fault = faults::FaultType::kComputeHang;
  config.recovery.policy = recover::RecoveryPolicy::kSpareFailover;
  const auto result = run_one(config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.recovery.recovered);
  ASSERT_EQ(result.attempts.size(), 2u);
  // Warm failover resumes from the at-kill snapshot: the survivors' state
  // at the kill instant, not an earlier checkpoint.
  EXPECT_EQ(result.attempts[1].resumed_from, result.attempts[0].end_time);
  EXPECT_EQ(result.recovery.overhead_total, config.recovery.failover_cost);
  EXPECT_EQ(result.recovery.checkpoints_taken, 0u);
}

TEST(RecoveryRunner, TeamReplicationBillsAllReplicas) {
  auto config = small_lu(3);
  config.fault = faults::FaultType::kComputeHang;
  config.recovery.policy = recover::RecoveryPolicy::kTeamReplication;
  config.recovery.replicas = 3;
  const auto result = run_one(config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.recovery.recovered);
  EXPECT_EQ(result.recovery.su_multiplier, 3.0);
  // The promoted team trails by the skew: resume is at most one cadence
  // before the kill.
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_GE(result.attempts[1].resumed_from,
            result.attempts[0].end_time - config.recovery.replica_skew -
                sim::kSecond);
}

TEST(RecoveryRunner, JournalIsDeterministicWithRecoveryOn) {
  const auto run_journal = [] {
    auto config = small_lu(9);
    config.fault = faults::FaultType::kComputeHang;
    config.recovery.policy = recover::RecoveryPolicy::kCheckpointRestart;
    std::ostringstream out;
    obs::JsonlJournal journal(out);
    config.telemetry = &journal;
    (void)run_one(config);
    return std::move(out).str();
  };
  const std::string a = run_journal();
  const std::string b = run_journal();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The journal narrates the recovery: a recovery line, exactly one
  // run_start and one run_end for the whole multi-attempt job.
  EXPECT_NE(a.find("\"ev\":\"recovery\""), std::string::npos);
  EXPECT_NE(a.find("\"action\":\"restore\""), std::string::npos);
  EXPECT_EQ(a.find("\"ev\":\"run_start\""), a.rfind("\"ev\":\"run_start\""));
  EXPECT_EQ(a.find("\"ev\":\"run_end\""), a.rfind("\"ev\":\"run_end\""));
}

TEST(RecoveryRunner, CleanRunNeverRecovers) {
  auto config = small_lu(1);
  config.recovery.policy = recover::RecoveryPolicy::kCheckpointRestart;
  const auto result = run_one(config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.recovery.enabled);
  EXPECT_FALSE(result.recovery.recovered);
  EXPECT_FALSE(result.recovery.gave_up);
  EXPECT_EQ(result.recovery.attempts_used, 1);
  EXPECT_EQ(result.recovery.overhead_total, 0);
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_TRUE(result.attempts[0].completed);
}

TEST(RecoveryRunner, CleanRunMatchesRecoveryOffOutcome) {
  // A recovery-armed clean run must be the same simulation it always was:
  // ckpt's periodic snapshot events are engine bookkeeping with zero cost
  // coupling into detection, and attempt 0 runs under the job seed exactly.
  auto off = small_lu(1);
  const auto baseline = run_one(off);
  auto on = small_lu(1);
  on.recovery.policy = recover::RecoveryPolicy::kSpareFailover;
  const auto result = run_one(on);
  ASSERT_TRUE(baseline.completed);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(*baseline.finish_time, *result.finish_time);
  EXPECT_EQ(baseline.traces, result.traces);
  EXPECT_EQ(baseline.model_samples, result.model_samples);
}

}  // namespace
}  // namespace parastack::harness
