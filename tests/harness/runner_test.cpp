#include "harness/runner.hpp"

#include <gtest/gtest.h>

namespace parastack::harness {
namespace {

RunConfig small_lu(std::uint64_t seed = 1) {
  RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(Runner, CleanRunCompletesWithoutReports) {
  const auto result = run_one(small_lu());
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.finish_time.has_value());
  EXPECT_GT(*result.finish_time, 0);
  EXPECT_FALSE(result.parastack_detected());
  EXPECT_EQ(result.fault.type, faults::FaultType::kNone);
  EXPECT_GT(result.traces, 0u);
  EXPECT_GT(result.model_samples, 20u);
}

TEST(Runner, WalltimeDefaultsToFactorTimesEstimate) {
  const auto result = run_one(small_lu());
  EXPECT_NEAR(static_cast<double>(result.walltime),
              2.0 * static_cast<double>(result.estimated_clean),
              1e-3 * static_cast<double>(result.walltime));
}

TEST(Runner, WalltimeOverrideRespected) {
  auto config = small_lu();
  config.walltime_override = 10 * sim::kSecond;  // far too short
  const auto result = run_one(config);
  EXPECT_FALSE(result.completed);
  EXPECT_LE(result.end_time, 10 * sim::kSecond + sim::kSecond);
}

TEST(Runner, ComputeHangDetectedAndJobKilled) {
  auto config = small_lu(3);
  config.fault = faults::FaultType::kComputeHang;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_TRUE(result.parastack_detected());
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.end_time, result.hangs().front().detected_at);
  EXPECT_LT(result.end_time, result.walltime);  // the whole point: SUs saved
  EXPECT_GT(result.response_delay_seconds(), 0.0);
  EXPECT_EQ(result.hangs().front().kind, core::HangKind::kComputationError);
  ASSERT_FALSE(result.hangs().front().faulty_ranks.empty());
  EXPECT_EQ(result.hangs().front().faulty_ranks.front(), result.fault.victim);
}

TEST(Runner, FaultTriggerRespectsWindow) {
  auto config = small_lu(4);
  config.fault = faults::FaultType::kComputeHang;
  const auto result = run_one(config);
  EXPECT_GE(result.fault.planned_trigger, config.min_fault_time);
  EXPECT_LE(result.fault.planned_trigger,
            static_cast<sim::Time>(config.fault_window_hi *
                                   static_cast<double>(result.estimated_clean)) +
                sim::kSecond);
}

TEST(Runner, DeterministicUnderSeed) {
  auto config = small_lu(9);
  config.fault = faults::FaultType::kComputeHang;
  const auto a = run_one(config);
  const auto b = run_one(config);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.fault.victim, b.fault.victim);
  ASSERT_EQ(a.hangs().size(), b.hangs().size());
  if (!a.hangs().empty()) {
    EXPECT_EQ(a.hangs().front().detected_at, b.hangs().front().detected_at);
  }
}

TEST(Runner, WithoutParastackHangBurnsWalltime) {
  auto config = small_lu(5);
  config.fault = faults::FaultType::kComputeHang;
  config.detectors.clear();
  const auto result = run_one(config);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.parastack_detected());
  EXPECT_GE(result.end_time, result.walltime - sim::kSecond);
}

TEST(Runner, TimeoutBaselineReportsAlone) {
  auto config = small_lu(6);
  config.fault = faults::FaultType::kComputeHang;
  config.detectors = {DetectorSpec::make_timeout()};
  config.timeout_config().interval = sim::from_millis(400);
  config.timeout_config().k = 10;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_FALSE(result.timeout_reports().empty());
  EXPECT_GT(result.timeout_reports().front().detected_at,
            result.fault.activated_at);
}

TEST(Runner, ThreeDetectorsWatchOneTrial) {
  auto config = small_lu(9);
  config.fault = faults::FaultType::kComputeHang;
  core::IoWatchdog::Config watchdog;
  watchdog.timeout = 2 * sim::kMinute;
  watchdog.poll_interval = 5 * sim::kSecond;
  config.detectors = {DetectorSpec::make_parastack(),
                      DetectorSpec::make_timeout(),
                      DetectorSpec::make_io_watchdog(watchdog)};
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_EQ(result.detectors.size(), 3u);
  EXPECT_EQ(result.detectors[0].kind, core::DetectorKind::kParastack);
  EXPECT_EQ(result.detectors[0].label, "parastack");
  EXPECT_EQ(result.detectors[1].kind, core::DetectorKind::kTimeout);
  EXPECT_EQ(result.detectors[1].label, "timeout");
  EXPECT_EQ(result.detectors[2].kind, core::DetectorKind::kIoWatchdog);
  EXPECT_EQ(result.detectors[2].label, "io-watchdog");
  // The primary (first) detector killed the job at ITS verdict; the others
  // kept watching the same trial but had no kill authority.
  ASSERT_TRUE(result.detectors[0].detected());
  EXPECT_FALSE(result.completed);
  const sim::Time kill_at =
      result.detectors[0].detections.front().detected_at;
  EXPECT_EQ(result.end_time, kill_at);
  ASSERT_FALSE(result.hangs().empty());
  EXPECT_EQ(result.hangs().front().detected_at, kill_at);
  // Every verdict any detector reached happened while the job was alive.
  for (const auto& entry : result.detectors) {
    for (const auto& detection : entry.detections) {
      EXPECT_EQ(detection.kind, entry.kind);
      EXPECT_LE(detection.detected_at, result.end_time);
    }
  }
}

TEST(Runner, SecondaryDetectorDoesNotPerturbThePrimary) {
  // Attaching observers must not change the primary's verdict: the
  // detectors share the trial but draw independent seeds from the config.
  auto alone = small_lu(10);
  alone.fault = faults::FaultType::kComputeHang;
  const auto baseline = run_one(alone);

  auto watched = small_lu(10);
  watched.fault = faults::FaultType::kComputeHang;
  watched.detectors = {DetectorSpec::make_parastack(),
                       DetectorSpec::make_io_watchdog()};
  const auto result = run_one(watched);

  ASSERT_TRUE(baseline.parastack_detected());
  ASSERT_TRUE(result.parastack_detected());
  EXPECT_EQ(*baseline.first_parastack_detection(),
            *result.first_parastack_detection());
  EXPECT_EQ(baseline.fault.victim, result.fault.victim);
  EXPECT_EQ(baseline.fault.activated_at, result.fault.activated_at);
}

TEST(Runner, HpcgReportsGflops) {
  RunConfig config;
  config.bench = workloads::Bench::kHPCG;
  config.input = "32";  // small local domain for test speed
  config.nranks = 16;
  config.platform = sim::Platform::tianhe2();
  config.background_slowdowns = false;
  const auto result = run_one(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.gflops, 0.0);
}

TEST(Runner, EstimateTracksActualRuntime) {
  const auto result = run_one(small_lu(7));
  ASSERT_TRUE(result.completed);
  const double ratio = static_cast<double>(*result.finish_time) /
                       static_cast<double>(result.estimated_clean);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace parastack::harness
