#include "harness/runner.hpp"

#include <gtest/gtest.h>

namespace parastack::harness {
namespace {

RunConfig small_lu(std::uint64_t seed = 1) {
  RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(Runner, CleanRunCompletesWithoutReports) {
  const auto result = run_one(small_lu());
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.finish_time, 0);
  EXPECT_FALSE(result.parastack_detected());
  EXPECT_EQ(result.fault.type, faults::FaultType::kNone);
  EXPECT_GT(result.traces, 0u);
  EXPECT_GT(result.model_samples, 20u);
}

TEST(Runner, WalltimeDefaultsToFactorTimesEstimate) {
  const auto result = run_one(small_lu());
  EXPECT_NEAR(static_cast<double>(result.walltime),
              2.0 * static_cast<double>(result.estimated_clean),
              1e-3 * static_cast<double>(result.walltime));
}

TEST(Runner, WalltimeOverrideRespected) {
  auto config = small_lu();
  config.walltime_override = 10 * sim::kSecond;  // far too short
  const auto result = run_one(config);
  EXPECT_FALSE(result.completed);
  EXPECT_LE(result.end_time, 10 * sim::kSecond + sim::kSecond);
}

TEST(Runner, ComputeHangDetectedAndJobKilled) {
  auto config = small_lu(3);
  config.fault = faults::FaultType::kComputeHang;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_TRUE(result.parastack_detected());
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.end_time, result.hangs.front().detected_at);
  EXPECT_LT(result.end_time, result.walltime);  // the whole point: SUs saved
  EXPECT_GT(result.response_delay_seconds(), 0.0);
  EXPECT_EQ(result.hangs.front().kind, core::HangKind::kComputationError);
  ASSERT_FALSE(result.hangs.front().faulty_ranks.empty());
  EXPECT_EQ(result.hangs.front().faulty_ranks.front(), result.fault.victim);
}

TEST(Runner, FaultTriggerRespectsWindow) {
  auto config = small_lu(4);
  config.fault = faults::FaultType::kComputeHang;
  const auto result = run_one(config);
  EXPECT_GE(result.fault.planned_trigger, config.min_fault_time);
  EXPECT_LE(result.fault.planned_trigger,
            static_cast<sim::Time>(config.fault_window_hi *
                                   static_cast<double>(result.estimated_clean)) +
                sim::kSecond);
}

TEST(Runner, DeterministicUnderSeed) {
  auto config = small_lu(9);
  config.fault = faults::FaultType::kComputeHang;
  const auto a = run_one(config);
  const auto b = run_one(config);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.fault.victim, b.fault.victim);
  ASSERT_EQ(a.hangs.size(), b.hangs.size());
  if (!a.hangs.empty()) {
    EXPECT_EQ(a.hangs.front().detected_at, b.hangs.front().detected_at);
  }
}

TEST(Runner, WithoutParastackHangBurnsWalltime) {
  auto config = small_lu(5);
  config.fault = faults::FaultType::kComputeHang;
  config.with_parastack = false;
  const auto result = run_one(config);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.parastack_detected());
  EXPECT_GE(result.end_time, result.walltime - sim::kSecond);
}

TEST(Runner, TimeoutBaselineReportsAlone) {
  auto config = small_lu(6);
  config.fault = faults::FaultType::kComputeHang;
  config.with_parastack = false;
  config.with_timeout_baseline = true;
  config.timeout.interval = sim::from_millis(400);
  config.timeout.k = 10;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_FALSE(result.timeout_reports.empty());
  EXPECT_GT(result.timeout_reports.front().detected_at,
            result.fault.activated_at);
}

TEST(Runner, HpcgReportsGflops) {
  RunConfig config;
  config.bench = workloads::Bench::kHPCG;
  config.input = "32";  // small local domain for test speed
  config.nranks = 16;
  config.platform = sim::Platform::tianhe2();
  config.background_slowdowns = false;
  const auto result = run_one(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.gflops, 0.0);
}

TEST(Runner, EstimateTracksActualRuntime) {
  const auto result = run_one(small_lu(7));
  ASSERT_TRUE(result.completed);
  const double ratio = static_cast<double>(result.finish_time) /
                       static_cast<double>(result.estimated_clean);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace parastack::harness
