#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

namespace parastack::harness {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr int kN = 200;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, 8, [&](int i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(ParallelFor, MoreWorkersThanWork) {
  std::vector<std::atomic<int>> visits(3);
  parallel_for(3, 64, [&](int i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ParallelFor, ZeroAndNegativeIterationsAreNoops) {
  int calls = 0;
  parallel_for(0, 4, [&](int) { ++calls; });
  parallel_for(-3, 4, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SerialDegenerationRunsInOrder) {
  std::vector<int> order;
  parallel_for(5, 1, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesAnException) {
  EXPECT_THROW(parallel_for(50, 4,
                            [&](int i) {
                              if (i == 17) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ExceptionStopsRemainingWork) {
  // After the throw, workers drain: far fewer than n indices execute when
  // the very first claimed index throws.
  std::atomic<int> executed{0};
  try {
    parallel_for(100000, 2, [&](int i) {
      if (i == 0) throw std::runtime_error("early");
      executed.fetch_add(1);
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(executed.load(), 100000);
}

TEST(ResolveJobs, AutoAndClamping) {
  EXPECT_GE(default_jobs(), 1);
  EXPECT_EQ(resolve_jobs(0), default_jobs());
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_EQ(resolve_jobs(-5), 1);
}

TEST(DeriveTrialSeed, TrialsNeverCollideWithinACampaign) {
  std::set<std::uint64_t> seen;
  for (int trial = 0; trial < 10000; ++trial) {
    seen.insert(derive_trial_seed(42, trial));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(DeriveTrialSeed, NotALinearStride) {
  // The old seed0 + 7919*i scheme made campaigns whose seed0 differ by a
  // stride multiple replay each other's trials. The hashed stream must not
  // have that aliasing: trial i of campaign s and trial i+1 of campaign
  // s-7919 used to coincide; now they must not.
  const std::uint64_t s = 424242;
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(derive_trial_seed(s, i), derive_trial_seed(s - 7919, i + 1));
    EXPECT_NE(derive_trial_seed(s, i + 1) - derive_trial_seed(s, i),
              derive_trial_seed(s, i + 2) - derive_trial_seed(s, i + 1))
        << "consecutive seeds form an arithmetic progression at i=" << i;
  }
}

TEST(DeriveTrialSeed, NeighbouringCampaignsDoNotShareTrials) {
  // Without the seed0 pre-hash, campaign s+1's trial i would equal
  // campaign s's trial i+1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(derive_trial_seed(9000, i + 1), derive_trial_seed(9001, i));
  }
}

TEST(DeriveTrialSeed, IsAPureFunction) {
  EXPECT_EQ(derive_trial_seed(9000, 3), derive_trial_seed(9000, 3));
  EXPECT_NE(derive_trial_seed(9000, 3), derive_trial_seed(9001, 3));
}

TEST(DeriveTrialSeed, NoCollisionsAcrossTenThousandTrials) {
  // SplitMix64 indexing is a bijection per trial, so the positional seeds
  // of one campaign can never collide. A collision would silently
  // double-count one trial's random stream in every campaign statistic.
  for (const std::uint64_t seed0 :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{42},
        std::uint64_t{0xffffffffffffffffULL}, std::uint64_t{987654321}}) {
    std::set<std::uint64_t> seen;
    for (int trial = 0; trial < 10000; ++trial) {
      const auto seed = derive_trial_seed(seed0, trial);
      EXPECT_TRUE(seen.insert(seed).second)
          << "seed collision at seed0=" << seed0 << " trial=" << trial;
    }
  }
}

TEST(DeriveTrialSeed, DistinctnessGuardAcceptsHealthyCampaigns) {
  // The campaign runners call this before fan-out; it PS_CHECK-aborts on a
  // collision, so merely returning is the pass signal.
  assert_trial_seeds_distinct(0, 10000);
  assert_trial_seeds_distinct(424242, 10000);
  assert_trial_seeds_distinct(0xdeadbeefULL, 10000);
  assert_trial_seeds_distinct(7, 0);   // degenerate sizes are fine
  assert_trial_seeds_distinct(7, 1);
}

}  // namespace
}  // namespace parastack::harness
