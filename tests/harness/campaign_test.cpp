#include "harness/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/journal.hpp"

namespace parastack::harness {
namespace {

CampaignConfig small_campaign(int runs) {
  CampaignConfig config;
  config.base.bench = workloads::Bench::kLU;
  config.base.input = "C";
  config.base.nranks = 32;
  config.base.platform = sim::Platform::tianhe2();
  config.base.background_slowdowns = false;
  config.runs = runs;
  config.seed0 = 9000;
  return config;
}

TEST(Campaign, ErroneousRunsDetectedAccurately) {
  auto config = small_campaign(4);
  config.base.fault = faults::FaultType::kComputeHang;
  const auto result = run_erroneous_campaign(config);
  EXPECT_EQ(result.runs, 4);
  EXPECT_EQ(result.detected, 4);
  EXPECT_EQ(result.false_positives, 0);
  EXPECT_EQ(result.missed, 0);
  EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
  EXPECT_EQ(result.computation_verdicts, 4);
  EXPECT_DOUBLE_EQ(result.acf(), 1.0);
  EXPECT_DOUBLE_EQ(result.prf(), 1.0);
  EXPECT_EQ(result.delays.size(), 4u);
  EXPECT_GT(result.delay_seconds.mean(), 0.0);
  EXPECT_LT(result.delay_seconds.mean(), 60.0);
}

TEST(Campaign, CommDeadlockClassifiedAsCommunication) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kCommDeadlock;
  const auto result = run_erroneous_campaign(config);
  EXPECT_EQ(result.detected, 3);
  EXPECT_EQ(result.communication_verdicts, 3);
  EXPECT_EQ(result.computation_verdicts, 0);
  // No faulty process is (correctly) reported for communication errors.
  EXPECT_DOUBLE_EQ(result.acf(), 0.0);
}

TEST(Campaign, CleanRunsProduceNoFalsePositives) {
  const auto result = run_clean_campaign(small_campaign(3));
  EXPECT_EQ(result.runs, 3);
  EXPECT_EQ(result.false_positives, 0);
  EXPECT_EQ(result.runtime_seconds.count(), 3u);
  EXPECT_GT(result.total_hours, 0.0);
}

TEST(Campaign, SeedsVaryAcrossRuns) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kComputeHang;
  const auto result = run_erroneous_campaign(config);
  ASSERT_EQ(result.results.size(), 3u);
  // Different seeds -> different victims or trigger instants.
  const bool all_same =
      result.results[0].fault.victim == result.results[1].fault.victim &&
      result.results[1].fault.victim == result.results[2].fault.victim &&
      result.results[0].fault.planned_trigger ==
          result.results[1].fault.planned_trigger;
  EXPECT_FALSE(all_same);
}

TEST(Campaign, TimeoutBaselineCampaign) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kComputeHang;
  config.base.detectors = {DetectorSpec::make_timeout()};
  config.base.timeout_config().interval = sim::from_millis(800);
  config.base.timeout_config().k = 10;
  const auto result = run_timeout_campaign(config);
  EXPECT_EQ(result.runs, 3);
  EXPECT_EQ(result.detected + result.false_positives + result.missed, 3);
}

TEST(Campaign, ZeroRunCampaignIsEmptyNotFatal) {
  auto config = small_campaign(0);
  config.base.fault = faults::FaultType::kComputeHang;
  const auto result = run_erroneous_campaign(config);
  EXPECT_EQ(result.runs, 0);
  EXPECT_EQ(result.detected, 0);
  EXPECT_EQ(result.false_positives, 0);
  EXPECT_EQ(result.missed, 0);
  EXPECT_DOUBLE_EQ(result.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(result.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(result.acf(), 0.0);
  EXPECT_DOUBLE_EQ(result.prf(), 0.0);
  EXPECT_TRUE(result.results.empty());

  const auto clean = run_clean_campaign(small_campaign(0));
  EXPECT_EQ(clean.runs, 0);
}

TEST(Campaign, BucketInvariantHolds) {
  // detected + false_positives + missed == runs + fp_then_detected: the
  // only way a run lands in two buckets is the FP-then-genuine overlap.
  auto config = small_campaign(6);
  config.base.fault = faults::FaultType::kComputeHang;
  const auto result = run_erroneous_campaign(config);
  EXPECT_EQ(result.detected + result.false_positives + result.missed,
            result.runs + result.fp_then_detected);
  // Kill-on-detection (the default) ends the job at the first report, so
  // the overlap bucket must be empty there.
  EXPECT_EQ(result.fp_then_detected, 0);
}

// --- accounting edge cases on synthetic results -------------------------

RunResult synthetic_faulted_run() {
  RunResult result;
  result.fault.type = faults::FaultType::kComputeHang;
  result.fault.victim = 7;
  result.fault.planned_trigger = 90 * sim::kSecond;
  result.fault.activated_at = 100 * sim::kSecond;
  return result;
}

core::HangReport hang_at(sim::Time t, simmpi::Rank rank) {
  core::HangReport report;
  report.detected_at = t;
  report.kind = core::HangKind::kComputationError;
  report.faulty_ranks = {rank};
  return report;
}

TEST(Accounting, PreFaultFpThenGenuineDetectionCountsBoth) {
  // The bug this guards against: stopping at hangs.front() made a run
  // whose pre-fault false positive preceded the real detection count as
  // FP-only, deflating accuracy and the faulty-id stats.
  RunResult result = synthetic_faulted_run();
  auto& parastack = result.detector_entry(core::DetectorKind::kParastack);
  parastack.hang_reports.push_back(hang_at(50 * sim::kSecond, 3));   // FP
  parastack.hang_reports.push_back(hang_at(130 * sim::kSecond, 7));  // real

  ErroneousCampaignResult out;
  account_erroneous_run(out, std::move(result));
  EXPECT_EQ(out.runs, 1);
  EXPECT_EQ(out.false_positives, 1);
  EXPECT_EQ(out.detected, 1);
  EXPECT_EQ(out.missed, 0);
  EXPECT_EQ(out.fp_then_detected, 1);
  // Delay and faulty-id stats must come from the genuine report, not the
  // pre-fault one.
  ASSERT_EQ(out.delays.size(), 1u);
  EXPECT_DOUBLE_EQ(out.delays[0], 30.0);
  EXPECT_EQ(out.victim_identified, 1);
  EXPECT_DOUBLE_EQ(out.precision_sum, 1.0);
}

TEST(Accounting, PreFaultFpAloneIsNotADetection) {
  RunResult result = synthetic_faulted_run();
  result.detector_entry(core::DetectorKind::kParastack)
      .hang_reports.push_back(hang_at(50 * sim::kSecond, 3));

  ErroneousCampaignResult out;
  account_erroneous_run(out, std::move(result));
  EXPECT_EQ(out.false_positives, 1);
  EXPECT_EQ(out.detected, 0);
  EXPECT_EQ(out.missed, 0);
  EXPECT_EQ(out.fp_then_detected, 0);
  EXPECT_TRUE(out.delays.empty());
}

TEST(Accounting, SilentRunIsMissed) {
  ErroneousCampaignResult out;
  account_erroneous_run(out, synthetic_faulted_run());
  EXPECT_EQ(out.missed, 1);
  EXPECT_EQ(out.detected, 0);
  EXPECT_EQ(out.false_positives, 0);
}

TEST(Accounting, TimeoutMirrorsTheSameSemantics) {
  RunResult result = synthetic_faulted_run();
  auto& timeout = result.detector_entry(core::DetectorKind::kTimeout);
  timeout.detections.push_back(
      {60 * sim::kSecond, core::DetectorKind::kTimeout});   // pre-fault FP
  timeout.detections.push_back(
      {150 * sim::kSecond, core::DetectorKind::kTimeout});  // genuine

  TimeoutCampaignResult out;
  account_timeout_run(out, result);
  EXPECT_EQ(out.runs, 1);
  EXPECT_EQ(out.false_positives, 1);
  EXPECT_EQ(out.detected, 1);
  EXPECT_EQ(out.missed, 0);
  EXPECT_EQ(out.fp_then_detected, 1);
  EXPECT_DOUBLE_EQ(out.delay_seconds.mean(), 50.0);
  EXPECT_EQ(out.detected + out.false_positives + out.missed,
            out.runs + out.fp_then_detected);
}

// --- parallel execution determinism -------------------------------------

TEST(Campaign, ResultsAreIdenticalForAnyJobsCount) {
  auto config = small_campaign(6);
  config.base.fault = faults::FaultType::kComputeHang;

  config.jobs = 1;
  const auto serial = run_erroneous_campaign(config);
  config.jobs = 8;
  const auto parallel = run_erroneous_campaign(config);

  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.detected, parallel.detected);
  EXPECT_EQ(serial.false_positives, parallel.false_positives);
  EXPECT_EQ(serial.missed, parallel.missed);
  EXPECT_EQ(serial.fp_then_detected, parallel.fp_then_detected);
  EXPECT_EQ(serial.computation_verdicts, parallel.computation_verdicts);
  EXPECT_EQ(serial.victim_identified, parallel.victim_identified);
  EXPECT_DOUBLE_EQ(serial.precision_sum, parallel.precision_sum);
  // Bit-exact, not approximately equal: the reduction runs serially in
  // trial order on both paths.
  EXPECT_EQ(serial.delay_seconds.mean(), parallel.delay_seconds.mean());
  EXPECT_EQ(serial.delay_seconds.stddev(), parallel.delay_seconds.stddev());
  ASSERT_EQ(serial.delays.size(), parallel.delays.size());
  for (std::size_t i = 0; i < serial.delays.size(); ++i) {
    EXPECT_EQ(serial.delays[i], parallel.delays[i]) << "i=" << i;
  }
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].fault.victim, parallel.results[i].fault.victim);
    EXPECT_EQ(serial.results[i].fault.activated_at,
              parallel.results[i].fault.activated_at);
    EXPECT_EQ(serial.results[i].end_time, parallel.results[i].end_time);
  }
}

TEST(Campaign, JournalIsByteIdenticalForAnyJobsCount) {
  const auto journal_with_jobs = [](int jobs) {
    std::ostringstream out;
    obs::JsonlJournal journal(out);
    auto config = small_campaign(4);
    config.base.fault = faults::FaultType::kComputeHang;
    config.base.telemetry = &journal;
    config.jobs = jobs;
    (void)run_erroneous_campaign(config);
    return out.str();
  };
  const std::string serial = journal_with_jobs(1);
  const std::string parallel = journal_with_jobs(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Campaign, MultiDetectorJournalIsByteIdenticalForAnyJobsCount) {
  // The per-detector telemetry labels ("parastack", "timeout",
  // "io-watchdog") must survive the parallel record/replay path unchanged:
  // a bank of three detectors per trial still merges to one deterministic
  // journal.
  const auto journal_with_jobs = [](int jobs) {
    std::ostringstream out;
    obs::JsonlJournal journal(out);
    auto config = small_campaign(4);
    config.base.fault = faults::FaultType::kComputeHang;
    config.base.detectors = {DetectorSpec::make_parastack(),
                             DetectorSpec::make_timeout(),
                             DetectorSpec::make_io_watchdog()};
    config.base.telemetry = &journal;
    config.jobs = jobs;
    (void)run_erroneous_campaign(config);
    return out.str();
  };
  const std::string serial = journal_with_jobs(1);
  const std::string parallel = journal_with_jobs(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"det\":\"parastack\""), std::string::npos);
  EXPECT_NE(serial.find("\"det\":\"timeout\""), std::string::npos);
}

TEST(Campaign, ToolFaultJournalIsByteIdenticalForAnyJobsCount) {
  // Determinism extends to the lossy message model: the tool-fault RNG is
  // derived from each trial's positional seed, never from scheduling.
  const auto journal_with_jobs = [](int jobs) {
    std::ostringstream out;
    obs::JsonlJournal journal(out);
    auto config = small_campaign(4);
    config.base.fault = faults::FaultType::kComputeHang;
    config.base.tool_faults.loss_probability = 0.25;
    config.base.tool_faults.monitor_crashes.push_back(
        {.monitor = -1, .at = 30 * sim::kSecond});
    config.base.telemetry = &journal;
    config.jobs = jobs;
    const auto result = run_erroneous_campaign(config);
    EXPECT_EQ(result.monitor_crashes, 4u);  // one per trial
    EXPECT_GT(result.sample_retries, 0u);
    return out.str();
  };
  const std::string serial = journal_with_jobs(1);
  const std::string parallel = journal_with_jobs(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"ev\":\"monitor_crash\""), std::string::npos);
  EXPECT_NE(serial.find("\"ev\":\"sample_timeout\""), std::string::npos);
}

TEST(Campaign, AutoJobsMatchesSerial) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kCommDeadlock;
  config.jobs = 1;
  const auto serial = run_erroneous_campaign(config);
  config.jobs = 0;  // auto: one worker per hardware thread
  const auto auto_jobs = run_erroneous_campaign(config);
  EXPECT_EQ(serial.detected, auto_jobs.detected);
  EXPECT_EQ(serial.delay_seconds.mean(), auto_jobs.delay_seconds.mean());
}

TEST(CampaignDeath, Validation) {
  auto config = small_campaign(1);
  EXPECT_DEATH((void)run_erroneous_campaign(config), "fault type");
  config.base.fault = faults::FaultType::kComputeHang;
  EXPECT_DEATH((void)run_clean_campaign(config), "must not inject");
  config.base.fault = faults::FaultType::kNone;
  EXPECT_DEATH((void)run_timeout_campaign(config), "baseline");
}

}  // namespace
}  // namespace parastack::harness
