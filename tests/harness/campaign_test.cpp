#include "harness/campaign.hpp"

#include <gtest/gtest.h>

namespace parastack::harness {
namespace {

CampaignConfig small_campaign(int runs) {
  CampaignConfig config;
  config.base.bench = workloads::Bench::kLU;
  config.base.input = "C";
  config.base.nranks = 32;
  config.base.platform = sim::Platform::tianhe2();
  config.base.background_slowdowns = false;
  config.runs = runs;
  config.seed0 = 9000;
  return config;
}

TEST(Campaign, ErroneousRunsDetectedAccurately) {
  auto config = small_campaign(4);
  config.base.fault = faults::FaultType::kComputeHang;
  const auto result = run_erroneous_campaign(config);
  EXPECT_EQ(result.runs, 4);
  EXPECT_EQ(result.detected, 4);
  EXPECT_EQ(result.false_positives, 0);
  EXPECT_EQ(result.missed, 0);
  EXPECT_DOUBLE_EQ(result.accuracy(), 1.0);
  EXPECT_EQ(result.computation_verdicts, 4);
  EXPECT_DOUBLE_EQ(result.acf(), 1.0);
  EXPECT_DOUBLE_EQ(result.prf(), 1.0);
  EXPECT_EQ(result.delays.size(), 4u);
  EXPECT_GT(result.delay_seconds.mean(), 0.0);
  EXPECT_LT(result.delay_seconds.mean(), 60.0);
}

TEST(Campaign, CommDeadlockClassifiedAsCommunication) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kCommDeadlock;
  const auto result = run_erroneous_campaign(config);
  EXPECT_EQ(result.detected, 3);
  EXPECT_EQ(result.communication_verdicts, 3);
  EXPECT_EQ(result.computation_verdicts, 0);
  // No faulty process is (correctly) reported for communication errors.
  EXPECT_DOUBLE_EQ(result.acf(), 0.0);
}

TEST(Campaign, CleanRunsProduceNoFalsePositives) {
  const auto result = run_clean_campaign(small_campaign(3));
  EXPECT_EQ(result.runs, 3);
  EXPECT_EQ(result.false_positives, 0);
  EXPECT_EQ(result.runtime_seconds.count(), 3u);
  EXPECT_GT(result.total_hours, 0.0);
}

TEST(Campaign, SeedsVaryAcrossRuns) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kComputeHang;
  const auto result = run_erroneous_campaign(config);
  ASSERT_EQ(result.results.size(), 3u);
  // Different seeds -> different victims or trigger instants.
  const bool all_same =
      result.results[0].fault.victim == result.results[1].fault.victim &&
      result.results[1].fault.victim == result.results[2].fault.victim &&
      result.results[0].fault.planned_trigger ==
          result.results[1].fault.planned_trigger;
  EXPECT_FALSE(all_same);
}

TEST(Campaign, TimeoutBaselineCampaign) {
  auto config = small_campaign(3);
  config.base.fault = faults::FaultType::kComputeHang;
  config.base.with_parastack = false;
  config.base.with_timeout_baseline = true;
  config.base.timeout.interval = sim::from_millis(800);
  config.base.timeout.k = 10;
  const auto result = run_timeout_campaign(config);
  EXPECT_EQ(result.runs, 3);
  EXPECT_EQ(result.detected + result.false_positives + result.missed, 3);
}

TEST(CampaignDeath, Validation) {
  auto config = small_campaign(1);
  EXPECT_DEATH((void)run_erroneous_campaign(config), "fault type");
  config.base.fault = faults::FaultType::kComputeHang;
  EXPECT_DEATH((void)run_clean_campaign(config), "must not inject");
  config.base.fault = faults::FaultType::kNone;
  EXPECT_DEATH((void)run_timeout_campaign(config), "baseline");
}

}  // namespace
}  // namespace parastack::harness
