// The trace-cost override plumbing used by the ablation bench, and the
// monotone relationship between per-trace cost and observed overhead.

#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace parastack::harness {
namespace {

RunConfig fixed_interval_config(std::uint64_t seed, double interval_ms) {
  RunConfig config;
  config.bench = workloads::Bench::kCG;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  config.parastack_config().initial_interval = sim::from_millis(interval_ms);
  config.parastack_config().enable_interval_tuning = false;
  return config;
}

TEST(TraceCost, OverrideChangesChargedCost) {
  auto cheap = fixed_interval_config(5, 200);
  cheap.trace_cost_override = sim::from_micros(200);
  auto expensive = fixed_interval_config(5, 200);
  expensive.trace_cost_override = sim::from_millis(10);
  const auto cheap_result = run_one(cheap);
  const auto expensive_result = run_one(expensive);
  ASSERT_GT(cheap_result.traces, 0u);
  // Same sampling plan, vastly different per-trace charge.
  EXPECT_GT(expensive_result.trace_cost, 10 * cheap_result.trace_cost);
}

TEST(TraceCost, HigherCostSlowsMonitoredJob) {
  auto cheap = fixed_interval_config(6, 100);
  cheap.trace_cost_override = sim::from_micros(100);
  auto expensive = fixed_interval_config(6, 100);
  expensive.trace_cost_override = sim::from_millis(25);
  const auto cheap_result = run_one(cheap);
  const auto expensive_result = run_one(expensive);
  ASSERT_TRUE(cheap_result.completed);
  ASSERT_TRUE(expensive_result.completed);
  // Collectives propagate the monitored ranks' ptrace stops to the job.
  EXPECT_GT(expensive_result.finish_time, cheap_result.finish_time);
}

TEST(TraceCost, DefaultMatchesInspectorCalibration) {
  const auto result = run_one(fixed_interval_config(7, 400));
  ASSERT_GT(result.traces, 0u);
  const double per_trace_ms =
      sim::to_millis(result.trace_cost) / static_cast<double>(result.traces);
  EXPECT_GT(per_trace_ms, 2.0);  // Table 3 calibration: ~2.8 ms
  EXPECT_LT(per_trace_ms, 3.6);
}

}  // namespace
}  // namespace parastack::harness
