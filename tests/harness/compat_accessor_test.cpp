// Regression coverage for the RunResult compat accessors (job_end_time,
// job_finish_time, first_attempt_end_time) under the combination PR 9 left
// unpinned: multi-attempt recovery with a detector bank attached. Includes
// the expire-mid-restore case, where the job's billable end is the walltime
// the slot burned to — not the kill instant the last attempt stopped at.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "sched/scheduler.hpp"

namespace parastack::harness {
namespace {

RunConfig banked_lu(std::uint64_t seed = 3) {
  RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  // The bank: ParaStack primary (its detections kill), the fixed-timeout
  // baseline observing alongside.
  config.detectors = {DetectorSpec::make_parastack(),
                      DetectorSpec::make_timeout()};
  config.recovery.policy = recover::RecoveryPolicy::kCheckpointRestart;
  config.recovery.checkpoint_interval = 30 * sim::kSecond;
  return config;
}

TEST(CompatAccessors, MultiAttemptWithDetectorBankDescribesTheFinalAttempt) {
  const RunResult result = run_one(banked_lu());
  ASSERT_TRUE(result.completed);
  ASSERT_GE(result.attempts.size(), 2u);
  // Both bank members survived the cross-attempt merge, in attachment
  // order, under their default labels.
  ASSERT_EQ(result.detectors.size(), 2u);
  EXPECT_EQ(result.detectors[0].kind, core::DetectorKind::kParastack);
  EXPECT_EQ(result.detectors[1].kind, core::DetectorKind::kTimeout);
  EXPECT_TRUE(result.detectors[0].detected());

  // The accessors describe the FINAL attempt; the first kill stays
  // reachable through first_attempt_end_time().
  const AttemptRecord& first = result.attempts.front();
  const AttemptRecord& last = result.attempts.back();
  EXPECT_TRUE(first.killed);
  EXPECT_TRUE(last.completed);
  EXPECT_EQ(result.first_attempt_end_time(), first.end_time);
  EXPECT_EQ(result.job_end_time(), last.end_time);
  ASSERT_TRUE(result.job_finish_time().has_value());
  EXPECT_EQ(*result.job_finish_time(), last.end_time);
  EXPECT_GT(result.job_end_time(), result.first_attempt_end_time());
}

TEST(CompatAccessors, ExpireMidRestoreReportsWalltimeAsTheJobEnd) {
  // Learn where the first kill lands, then shrink the slot so the restore
  // outlives it: the job must expire mid-restore.
  const RunResult probe = run_one(banked_lu());
  ASSERT_GE(probe.attempts.size(), 2u);
  const sim::Time kill_time = probe.attempts.front().end_time;

  RunConfig config = banked_lu();
  config.walltime_override =
      kill_time + config.recovery.restart_cost + 500 * sim::kMillisecond;
  const RunResult result = run_one(config);

  ASSERT_FALSE(result.completed);
  EXPECT_FALSE(result.recovery.gave_up);
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_TRUE(result.attempts.front().killed);
  EXPECT_EQ(result.attempts.front().end_time, kill_time);
  // The regression: end_time must be the walltime expiry the lifecycle (and
  // the scheduler's bill) records, not the kill instant of the dead
  // attempt — that one stays on the attempt record.
  EXPECT_EQ(result.job_end_time(), *config.walltime_override);
  EXPECT_EQ(result.first_attempt_end_time(), kill_time);
  EXPECT_LT(result.first_attempt_end_time(), result.job_end_time());
  EXPECT_FALSE(result.job_finish_time().has_value());

  // Billing coherence (what the fleet ledger builds on): the charge is a
  // full-slot expiry with no savings credit.
  sched::JobTicket ticket;
  ticket.nodes = 2;
  ticket.cores_per_node = 24;
  ticket.walltime = result.walltime;
  const sched::JobCharge charge = sched::settle_recovered(
      ticket, result.job_finish_time(), result.job_end_time(),
      result.recovery.gave_up, result.recovery.su_multiplier);
  EXPECT_EQ(charge.end, sched::JobEnd::kWalltimeExpired);
  EXPECT_EQ(charge.elapsed, result.walltime);
  EXPECT_DOUBLE_EQ(charge.savings_fraction, 0.0);
}

TEST(CompatAccessors, GiveUpKeepsTheKillInstantAsTheJobEnd) {
  // Contrast case: a give-up abandons the slot at the kill — end_time stays
  // at the kill instant and the bill reclassifies it without savings.
  RunConfig config = banked_lu();
  config.recovery.max_restarts = 0;
  const RunResult result = run_one(config);

  ASSERT_FALSE(result.completed);
  EXPECT_TRUE(result.recovery.gave_up);
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_EQ(result.job_end_time(), result.attempts.front().end_time);
  EXPECT_LT(result.job_end_time(), result.walltime);

  sched::JobTicket ticket;
  ticket.walltime = result.walltime;
  const sched::JobCharge charge = sched::settle_recovered(
      ticket, result.job_finish_time(), result.job_end_time(),
      result.recovery.gave_up, result.recovery.su_multiplier);
  EXPECT_EQ(charge.end, sched::JobEnd::kGaveUp);
  EXPECT_DOUBLE_EQ(charge.savings_fraction, 0.0);
}

}  // namespace
}  // namespace parastack::harness
