// Scheduler/driver edge cases for the recovery loop: the retry budget
// running dry, recovery racing a second genuine hang, and a degraded-mode
// verdict (blinded tool, fallback detector) arriving while a team policy
// has to arbitrate second-hand evidence.

#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace parastack::harness {
namespace {

RunConfig hang_config(std::uint64_t seed) {
  RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  // Strike early and at a fixed instant: a refault re-arms at the same
  // relative offset into the restarted attempt, so the trigger must land
  // well inside the (shorter) post-restore stretch of the app.
  config.fault_trigger_lo = 40 * sim::kSecond;
  config.fault_trigger_hi = 40 * sim::kSecond;
  return config;
}

TEST(RecoveryEdge, GivesUpAfterMaxRetries) {
  // The fault re-arms on every attempt (refault_attempts far above the
  // retry budget), so each restore runs straight into another hang. After
  // max_restarts kills the driver must stop retrying and mark the job
  // given up, not loop or report success.
  auto config = hang_config(3);
  config.walltime_override = 3600 * sim::kSecond;  // room for every retry
  config.recovery.policy = recover::RecoveryPolicy::kCheckpointRestart;
  config.recovery.max_restarts = 2;
  config.recovery.refault_attempts = 10;
  const auto result = run_one(config);

  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.recovery.gave_up);
  EXPECT_FALSE(result.recovery.recovered);
  // Budget of 2 restarts = 3 attempts total, every one killed.
  ASSERT_EQ(result.attempts.size(), 3u);
  EXPECT_EQ(result.recovery.attempts_used, 3);
  for (const auto& attempt : result.attempts) {
    EXPECT_TRUE(attempt.killed) << "attempt " << attempt.attempt;
    EXPECT_FALSE(attempt.completed);
  }
  // Attempts stay strictly ordered on the job timeline.
  EXPECT_GT(result.attempts[1].start_time, result.attempts[0].end_time);
  EXPECT_GT(result.attempts[2].start_time, result.attempts[1].end_time);
}

TEST(RecoveryEdge, RecoveryRacesASecondGenuineHang) {
  // The first restore lands in a world that hangs AGAIN (refault on
  // attempt 1 only): the detector must re-detect inside the restored
  // attempt and the second restore must still carry the job home.
  auto config = hang_config(3);
  config.walltime_override = 3600 * sim::kSecond;
  config.recovery.policy = recover::RecoveryPolicy::kCheckpointRestart;
  config.recovery.max_restarts = 3;
  config.recovery.refault_attempts = 1;
  const auto result = run_one(config);

  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.recovery.recovered);
  EXPECT_FALSE(result.recovery.gave_up);
  ASSERT_EQ(result.attempts.size(), 3u);
  EXPECT_TRUE(result.attempts[0].killed);
  EXPECT_TRUE(result.attempts[1].killed);  // the re-armed hang, re-detected
  EXPECT_TRUE(result.attempts[2].completed);
  // Two kills -> two restores billed.
  EXPECT_EQ(result.recovery.overhead_total, 2 * config.recovery.restart_cost);
}

TEST(RecoveryEdge, DegradedVerdictDuringRestoreIsReVerified) {
  // Blinded-tool setup: every monitor is dead before the hang strikes, so
  // the kill comes from the degraded-mode fallback TimeoutDetector — a
  // second-hand verdict. Team replication must arbitrate it (double
  // arbitration cost, "re-verified" in the attempt provenance) and still
  // promote a replica that completes the job.
  auto config = hang_config(23);
  config.fault_trigger_lo = 70 * sim::kSecond;
  config.fault_trigger_hi = 70 * sim::kSecond;
  config.tool_faults.monitor_crashes.push_back(
      {.monitor = 1, .at = 30 * sim::kSecond});
  config.tool_faults.lead_crash_at = 30 * sim::kSecond;
  config.degraded_fallback_timeout = true;
  config.recovery.policy = recover::RecoveryPolicy::kTeamReplication;
  config.recovery.replicas = 2;
  const auto result = run_one(config);

  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.recovery.recovered);
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_TRUE(result.attempts[0].killed);
  EXPECT_NE(result.attempts[0].recovery_detail.find("re-verified"),
            std::string::npos)
      << result.attempts[0].recovery_detail;
  // Degraded evidence costs a second arbitration round before the switch.
  EXPECT_EQ(result.recovery.overhead_total,
            2 * config.recovery.arbitration_cost);
  EXPECT_EQ(result.recovery.su_multiplier, 2.0);
}

TEST(RecoveryEdge, SpareExhaustionGivesUpWithoutBurningSpares) {
  // One spare, but the fault re-arms forever: the second kill finds the
  // spare pool empty and the policy refuses — the driver gives up there
  // instead of restarting with nothing to fail over to.
  auto config = hang_config(3);
  config.walltime_override = 3600 * sim::kSecond;
  config.recovery.policy = recover::RecoveryPolicy::kSpareFailover;
  config.recovery.spare_count = 1;
  config.recovery.max_restarts = 5;
  config.recovery.refault_attempts = 10;
  const auto result = run_one(config);

  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.recovery.gave_up);
  // Attempt 0 killed, one failover, attempt 1 killed, pool empty -> stop.
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_TRUE(result.attempts[1].killed);
  EXPECT_NE(result.attempts[1].recovery_detail.find("exhausted"),
            std::string::npos)
      << result.attempts[1].recovery_detail;
}

}  // namespace
}  // namespace parastack::harness
