#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace parastack::faults {
namespace {

std::shared_ptr<const workloads::BenchmarkProfile> looping_profile(
    int iterations = 200) {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->name = "LOOP";
  profile->iterations = static_cast<std::uint64_t>(iterations);
  profile->reference_ranks = 8;
  profile->setup_time = sim::from_millis(5);
  profile->phases = {
      {"loop_compute", sim::from_millis(10), 0.05,
       workloads::CommPattern::kAllreduce, 64},
  };
  return profile;
}

simmpi::WorldConfig config8(std::uint64_t seed = 11) {
  simmpi::WorldConfig config;
  config.nranks = 8;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(FaultInjector, NoFaultPassesThrough) {
  FaultInjector injector(FaultPlan{});
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  world.start();
  EXPECT_TRUE(world.run_until_done(sim::kMinute));
  EXPECT_FALSE(injector.record().activated());
}

TEST(FaultInjector, ComputeHangActivatesAfterTrigger) {
  FaultPlan plan;
  plan.type = FaultType::kComputeHang;
  plan.victim = 5;
  plan.trigger_time = sim::from_millis(300);
  FaultInjector injector(plan);
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  world.start();
  EXPECT_FALSE(world.run_until_done(sim::kMinute));  // global hang
  const auto& record = injector.record();
  EXPECT_TRUE(record.activated());
  EXPECT_GE(record.activated_at, plan.trigger_time);
  // Victim is stuck OUT_MPI in user code; everyone else is stuck IN_MPI.
  EXPECT_FALSE(world.rank(5).in_mpi());
  EXPECT_EQ(world.rank(5).status(), simmpi::RankStatus::kHungCompute);
  for (simmpi::Rank r = 0; r < 8; ++r) {
    if (r != 5) EXPECT_TRUE(world.rank(r).in_mpi()) << "rank " << r;
  }
}

TEST(FaultInjector, ComputeHangPreservesUserFunctionFrame) {
  FaultPlan plan;
  plan.type = FaultType::kComputeHang;
  plan.victim = 2;
  plan.trigger_time = sim::from_millis(100);
  FaultInjector injector(plan);
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  world.start();
  world.run_until_done(sim::kMinute);
  // The hang is injected into the benchmark's own user function (§7).
  EXPECT_EQ(world.rank(2).stack().top(), "loop_compute");
}

TEST(FaultInjector, CommDeadlockLeavesEveryoneInMpi) {
  FaultPlan plan;
  plan.type = FaultType::kCommDeadlock;
  plan.victim = 3;
  plan.trigger_time = sim::from_millis(300);
  FaultInjector injector(plan);
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  world.start();
  EXPECT_FALSE(world.run_until_done(sim::kMinute));
  EXPECT_TRUE(injector.record().activated());
  for (simmpi::Rank r = 0; r < 8; ++r) {
    EXPECT_TRUE(world.rank(r).in_mpi()) << "rank " << r;
  }
}

TEST(FaultInjector, NodeFreezeStopsWholeNode) {
  FaultPlan plan;
  plan.type = FaultType::kNodeFreeze;
  plan.victim = 0;  // node 0 hosts all 8 ranks on Tianhe-2 (24 cores/node)
  plan.trigger_time = sim::from_millis(200);
  FaultInjector injector(plan);
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  world.start();
  EXPECT_FALSE(world.run_until_done(sim::kMinute));
  EXPECT_TRUE(injector.record().activated());
  EXPECT_EQ(injector.record().activated_at, plan.trigger_time);
  for (simmpi::Rank r = 0; r < 8; ++r) {
    EXPECT_TRUE(world.rank(r).frozen());
    EXPECT_FALSE(world.rank(r).finished());
  }
}

TEST(FaultInjector, TransientSlowdownRecoversAndCompletes) {
  FaultPlan plan;
  plan.type = FaultType::kTransientSlowdown;
  plan.victim = 1;
  plan.trigger_time = sim::from_millis(100);
  plan.slowdown_duration = sim::from_millis(400);
  plan.slowdown_factor = 10.0;
  FaultInjector injector(plan);

  // Reference run without the fault.
  simmpi::World clean(config8(42),
                      workloads::make_factory(looping_profile(50)));
  clean.start();
  ASSERT_TRUE(clean.run_until_done(sim::kMinute));

  simmpi::World world(
      config8(42),
      injector.wrap(workloads::make_factory(looping_profile(50))));
  injector.arm(world);
  world.start();
  EXPECT_TRUE(world.run_until_done(10 * sim::kMinute));  // completes anyway
  EXPECT_TRUE(injector.record().activated());
  EXPECT_GT(world.finish_time(), clean.finish_time());  // but paid for it
  // Factor restored.
  for (simmpi::Rank r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(world.rank(r).compute_factor(), 1.0);
  }
}

TEST(FaultInjector, VictimOutsideWrapUnaffected) {
  FaultPlan plan;
  plan.type = FaultType::kComputeHang;
  plan.victim = 7;
  plan.trigger_time = sim::kHour;  // never reached in this run
  FaultInjector injector(plan);
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  world.start();
  EXPECT_TRUE(world.run_until_done(sim::kMinute));
  EXPECT_FALSE(injector.record().activated());
}

TEST(FaultInjectorDeath, ArmTwiceFailsLoudly) {
  FaultPlan plan;
  plan.type = FaultType::kComputeHang;
  plan.victim = 1;
  plan.trigger_time = sim::from_millis(100);
  FaultInjector injector(plan);
  simmpi::World world(config8(),
                      injector.wrap(workloads::make_factory(looping_profile())));
  injector.arm(world);
  EXPECT_DEATH(injector.arm(world), "arm called twice");
}

TEST(FaultInjectorDeath, ArmWithoutWrapFailsLoudly) {
  FaultPlan plan;
  plan.type = FaultType::kComputeHang;
  plan.victim = 1;
  plan.trigger_time = sim::from_millis(100);
  FaultInjector injector(plan);
  // World built from the RAW factory: the injector never instrumented the
  // victim, so arming would silently produce a fault that cannot fire.
  simmpi::World world(config8(), workloads::make_factory(looping_profile()));
  EXPECT_DEATH(injector.arm(world), "never called");
}

TEST(FaultInjector, NodeFreezeArmsWithoutWrap) {
  // Node-level faults are injected via the engine, not the rank program, so
  // an unwrapped factory is legitimate for them.
  FaultPlan plan;
  plan.type = FaultType::kNodeFreeze;
  plan.victim = 0;
  plan.trigger_time = sim::from_millis(100);
  FaultInjector injector(plan);
  simmpi::World world(config8(), workloads::make_factory(looping_profile()));
  injector.arm(world);
  world.start();
  EXPECT_FALSE(world.run_until_done(sim::kMinute));
  EXPECT_TRUE(injector.record().activated());
}

}  // namespace
}  // namespace parastack::faults
