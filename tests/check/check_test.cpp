#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/driver.hpp"
#include "check/invariants.hpp"
#include "check/oracles.hpp"
#include "check/scenario.hpp"
#include "check/shrink.hpp"
#include "harness/runner.hpp"

namespace parastack::check {
namespace {

/// A deliberately small scenario so the simulation-backed tests stay fast.
Scenario tiny_scenario() {
  Scenario s;
  s.fuzz_seed = 5;
  s.run_seed = 12345;
  s.bench = workloads::kAllBenches[0];
  s.input = "C";
  s.nranks = 4;
  s.platform = 0;
  s.horizon = 30 * sim::kSecond;
  s.fault = faults::FaultType::kNone;
  s.background_slowdowns = false;
  s.use_monitor_network = true;
  s.with_timeout_detector = false;
  s.with_io_watchdog = false;
  s.campaign_runs = 2;
  return s;
}

TEST(Scenario, GenerationIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    EXPECT_TRUE(generate_scenario(seed) == generate_scenario(seed))
        << "seed " << seed;
  }
  EXPECT_FALSE(generate_scenario(1) == generate_scenario(2));
}

TEST(Scenario, GeneratedScenariosAreAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = generate_scenario(seed);
    EXPECT_GE(s.nranks, 2) << "seed " << seed;
    EXPECT_GT(s.horizon, 0) << "seed " << seed;
    EXPECT_GE(s.platform, 0);
    EXPECT_LE(s.platform, 2);
    EXPECT_GE(s.tool_loss, 0.0);
    EXPECT_LE(s.tool_loss, 1.0);
    EXPECT_GE(s.campaign_runs, 1);
    EXPECT_NE(s.run_seed, 0u);
    if (!s.use_monitor_network) {
      EXPECT_FALSE(s.tool_faults_armed()) << "seed " << seed;
    }
  }
}

TEST(Scenario, ReproStringRoundTripsEveryGeneratedScenario) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Scenario s = generate_scenario(seed);
    const auto back = parse_repro(to_repro(s));
    ASSERT_TRUE(back.has_value()) << to_repro(s);
    EXPECT_TRUE(*back == s) << to_repro(s);
  }
}

TEST(Scenario, ParserRejectsGarbage) {
  EXPECT_FALSE(parse_repro("").has_value());
  EXPECT_FALSE(parse_repro("v2,fseed=1").has_value());
  EXPECT_FALSE(parse_repro("v1,what=ever").has_value());
  EXPECT_FALSE(parse_repro("v1,bench=NotABench").has_value());
  EXPECT_FALSE(parse_repro("v1,ranks=1").has_value());
  EXPECT_FALSE(parse_repro("v1,loss=1.5").has_value());
  EXPECT_FALSE(parse_repro("v1,horizon-ms=0").has_value());
  EXPECT_FALSE(parse_repro("v1,fleet=0").has_value());
  EXPECT_FALSE(parse_repro("v1,arrival=bursty").has_value());
}

TEST(Scenario, FleetDimensionIsDrawnAndValid) {
  int fleet_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = generate_scenario(seed);
    EXPECT_GE(s.fleet_jobs, 1) << "seed " << seed;
    EXPECT_LE(s.fleet_jobs, 3) << "seed " << seed;
    EXPECT_GE(s.fleet_arrival, 0);
    EXPECT_LE(s.fleet_arrival, 1);
    if (s.fleet_jobs > 1) {
      ++fleet_seeds;
    } else {
      EXPECT_EQ(s.fleet_arrival, 0) << "seed " << seed;
    }
  }
  // Roughly one seed in five lands in the fleet dimension: enough sweep
  // coverage without dominating its cost.
  EXPECT_GT(fleet_seeds, 10);
  EXPECT_LT(fleet_seeds, 100);
}

TEST(Scenario, FleetReproKeysAppearOnlyWhenMultiTenant) {
  Scenario s = tiny_scenario();
  EXPECT_EQ(to_repro(s).find("fleet="), std::string::npos);
  s.fleet_jobs = 3;
  s.fleet_arrival = 1;
  const std::string repro = to_repro(s);
  EXPECT_NE(repro.find("fleet=3"), std::string::npos);
  EXPECT_NE(repro.find("arrival=trace"), std::string::npos);
  const auto back = parse_repro(repro);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == s);
}

TEST(InvariantSink, CleanOnAHealthyRun) {
  harness::RunConfig config = to_run_config(tiny_scenario());
  InvariantSink sink;
  config.telemetry = &sink;
  std::vector<std::string> probe;
  config.post_run_probe = [&probe](const simmpi::World& world,
                                   const harness::RunResult& result) {
    check_run_invariants(world, result, probe);
  };
  (void)harness::run_one(config);
  EXPECT_TRUE(sink.clean()) << sink.violations().front();
  EXPECT_TRUE(probe.empty()) << probe.front();
}

TEST(InvariantSink, FlagsABackwardsClock) {
  InvariantSink sink;
  obs::SampleEvent a;
  a.time = 10 * sim::kSecond;
  a.detector = "parastack";
  a.interval = sim::kSecond;
  sink.on_sample(a);
  obs::SampleEvent b = a;
  b.time = 5 * sim::kSecond;  // backwards
  sink.on_sample(b);
  ASSERT_FALSE(sink.clean());
  EXPECT_NE(sink.violations().front().find("backwards"), std::string::npos);
}

TEST(InvariantSink, FlagsHangWithoutVerification) {
  InvariantSink sink;
  obs::HangEvent hang;
  hang.time = sim::kSecond;
  hang.detector = "parastack";
  sink.on_hang(hang);
  ASSERT_FALSE(sink.clean());
  EXPECT_NE(sink.violations().front().find("verification"),
            std::string::npos);
}

TEST(Oracles, TinyScenarioPassesEveryOracle) {
  OracleOptions options;
  options.jobs = 2;
  const SeedReport report = check_scenario(tiny_scenario(), options);
  EXPECT_TRUE(report.ok()) << report.failures.front().oracle << ": "
                           << report.failures.front().detail;
  EXPECT_GT(report.runs_executed, 0);
}

TEST(Oracles, TinyFleetScenarioPassesTheFleetOracles) {
  Scenario s = tiny_scenario();
  s.fleet_jobs = 2;
  OracleOptions options;
  options.jobs = 2;
  options.campaign_differential = false;  // isolate the fleet oracles' cost
  const SeedReport report = check_scenario(s, options);
  EXPECT_TRUE(report.ok()) << report.failures.front().oracle << ": "
                           << report.failures.front().detail;
  // base + determinism + fleet-identity, then the isolation differential's
  // 2-tenant and 3-tenant fleets.
  EXPECT_EQ(report.runs_executed, 8);
}

TEST(Oracles, PlantedClockWarpIsCaught) {
  OracleOptions options;
  options.plant_clock_skew = 3600 * sim::kSecond;
  options.campaign_differential = false;  // keep the self-test fast
  const SeedReport report = check_scenario(tiny_scenario(), options);
  ASSERT_FALSE(report.ok());
  bool planted = false;
  for (const auto& f : report.failures) {
    if (f.oracle == "planted-clock") planted = true;
  }
  EXPECT_TRUE(planted);
}

TEST(Shrink, GreedyMinimizationOnAPureFunction) {
  // No simulation: the predicate is a pure function of the scenario, so
  // this exercises the shrinking loop in microseconds.
  Scenario failing = generate_scenario(99);
  failing.nranks = 64;
  const FailurePredicate fails = [](const Scenario& s) {
    return s.nranks >= 8;
  };
  ASSERT_TRUE(fails(failing));
  const ShrinkResult result = shrink_scenario(failing, fails, 200);
  EXPECT_TRUE(fails(result.scenario));
  EXPECT_EQ(result.scenario.nranks, 8);  // halving stops where it still fails
  // Orthogonal dimensions collapse too — fault dropped, detectors off.
  EXPECT_EQ(result.scenario.fault, faults::FaultType::kNone);
  EXPECT_FALSE(result.scenario.with_timeout_detector);
  EXPECT_FALSE(result.scenario.with_io_watchdog);
  EXPECT_GT(result.accepted, 0);
}

TEST(Shrink, BenchSwapRepairsTheInput) {
  // Shrinking an HPL scenario swaps the bench towards kAllBenches[0]; the
  // HPL input ("40000") is not an NPB class, so the swap must re-pair the
  // input or every shrunk candidate aborts inside the workload catalog.
  Scenario failing = tiny_scenario();
  failing.bench = workloads::Bench::kHPL;
  failing.input = "40000";
  const FailurePredicate fails = [](const Scenario& s) {
    // Building the profile PS_CHECK-aborts on a bad bench/input pairing.
    (void)workloads::make_profile(s.bench, s.input, s.nranks);
    return true;
  };
  const ShrinkResult result = shrink_scenario(failing, fails, 50);
  EXPECT_EQ(result.scenario.bench, workloads::kAllBenches[0]);
  EXPECT_EQ(result.scenario.input, default_fuzz_input(result.scenario.bench));
}

TEST(Shrink, BudgetIsRespected) {
  Scenario failing = generate_scenario(7);
  int calls = 0;
  const FailurePredicate fails = [&calls](const Scenario&) {
    ++calls;
    return true;  // everything fails: only the budget can stop the loop
  };
  const ShrinkResult result = shrink_scenario(failing, fails, 10);
  EXPECT_LE(result.attempts, 10);
  EXPECT_EQ(calls, result.attempts);
}

TEST(Driver, PlantedFailureShrinksAndReproduces) {
  DriverOptions options;
  options.oracles.plant_clock_skew = 3600 * sim::kSecond;
  options.oracles.campaign_differential = false;
  options.shrink_budget = 25;

  const CheckOutcome outcome = check_scenario_full(tiny_scenario(), options);
  ASSERT_FALSE(outcome.ok());
  ASSERT_TRUE(outcome.shrunk.has_value());
  EXPECT_NE(outcome.repro_command.find("pscheck --repro="),
            std::string::npos);
  EXPECT_NE(outcome.repro_command.find("--plant=clock"), std::string::npos);

  // The printed repro string must reproduce the failure stand-alone.
  const auto start = outcome.repro_command.find('\'');
  const auto end = outcome.repro_command.rfind('\'');
  ASSERT_NE(start, std::string::npos);
  ASSERT_GT(end, start);
  const std::string repro =
      outcome.repro_command.substr(start + 1, end - start - 1);
  const auto scenario = parse_repro(repro);
  ASSERT_TRUE(scenario.has_value()) << repro;
  const SeedReport again = check_scenario(*scenario, options.oracles);
  EXPECT_FALSE(again.ok());
}

TEST(Driver, CleanSeedReportsNoRepro) {
  DriverOptions options;
  options.oracles.campaign_differential = false;
  const CheckOutcome outcome =
      check_scenario_full(tiny_scenario(), options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.repro_command.empty());
  EXPECT_FALSE(outcome.shrunk.has_value());
}

}  // namespace
}  // namespace parastack::check
