#include "core/io_watchdog.hpp"

#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

std::shared_ptr<const workloads::BenchmarkProfile> writing_profile(
    int output_every = 5) {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 2000;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(100);
  profile->output_every = output_every;
  profile->phases = {
      {"w", sim::from_millis(40), 0.1, workloads::CommPattern::kAllreduce,
       64},
  };
  return profile;
}

simmpi::WorldConfig config16(std::uint64_t seed = 31) {
  simmpi::WorldConfig config;
  config.nranks = 16;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(IoWatchdog, WorldTracksWriteActivity) {
  simmpi::World world(config16(), workloads::make_factory(writing_profile()));
  EXPECT_EQ(world.last_io_write(), -1);
  world.start();
  world.engine().run_until(10 * sim::kSecond);
  EXPECT_GT(world.last_io_write(), 0);
  EXPECT_GT(world.io_bytes_written(), 0u);
}

TEST(IoWatchdog, QuietOnHealthyRun) {
  simmpi::World world(config16(), workloads::make_factory(writing_profile()));
  IoWatchdog::Config config;
  config.timeout = 10 * sim::kSecond;  // writes come every ~0.2s
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  world.run_until_done(5 * sim::kMinute);
  EXPECT_TRUE(world.all_finished());
  EXPECT_FALSE(watchdog.hang_reported());
}

TEST(IoWatchdog, DetectsHangAfterTimeout) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 9;
  plan.trigger_time = 10 * sim::kSecond;
  faults::FaultInjector injector(plan);
  simmpi::World world(config16(),
                      injector.wrap(workloads::make_factory(writing_profile())));
  injector.arm(world);
  IoWatchdog::Config config;
  config.timeout = 30 * sim::kSecond;
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  auto& engine = world.engine();
  while (!watchdog.hang_reported() && engine.now() < 5 * sim::kMinute &&
         engine.step()) {
  }
  ASSERT_TRUE(watchdog.hang_reported());
  const auto& report = watchdog.reports().front();
  // Detection pays (at least) the full timeout after the last write.
  EXPECT_GE(report.silence, config.timeout);
  EXPECT_GT(report.detected_at,
            injector.record().activated_at + config.timeout - sim::kSecond);
}

TEST(IoWatchdog, SmallTimeoutFalseAlarmsOnQuietPhases) {
  // The app writes only every 200 iterations (~8 s): a 3 s timeout fires
  // during perfectly healthy stretches — the guessing problem ParaStack
  // eliminates.
  simmpi::World world(config16(),
                      workloads::make_factory(writing_profile(200)));
  IoWatchdog::Config config;
  config.timeout = 3 * sim::kSecond;
  config.poll_interval = sim::kSecond;
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  auto& engine = world.engine();
  while (!watchdog.hang_reported() && !world.all_finished() &&
         engine.step()) {
  }
  EXPECT_TRUE(watchdog.hang_reported());
}

TEST(IoWatchdog, ZeroLengthJobIsNeverAccused) {
  // A job that finishes almost immediately — before it ever writes — must
  // not be reported, no matter how far the engine later drains: the poll's
  // all_finished() guard ends the watchdog with the job.
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 1;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(1);
  profile->output_every = 0;  // truly zero-length: not even the first write
  profile->phases = {
      {"blip", sim::from_millis(1), 0.1, workloads::CommPattern::kAllreduce,
       64},
  };
  simmpi::World world(config16(), workloads::make_factory(profile));
  IoWatchdog::Config config;
  config.timeout = 100 * sim::kMillisecond;  // tiny: silence "expires" fast
  config.poll_interval = 20 * sim::kMillisecond;
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  auto& engine = world.engine();
  while (engine.step()) {  // drain every event, polls included
  }
  EXPECT_TRUE(world.all_finished());
  EXPECT_EQ(world.last_io_write(), -1);  // never wrote
  EXPECT_FALSE(watchdog.hang_reported());
}

TEST(IoWatchdog, DetectsExactlyAtTheTimeoutBoundary) {
  // Never-writing hung job: silence runs from t=0, polls land on exact
  // multiples of the interval, and timeout = 3 * interval — so the report
  // must fire at exactly t = timeout with silence == timeout (the >=
  // comparison at the boundary, not one poll later).
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 3;
  plan.trigger_time = 5 * sim::kSecond;
  faults::FaultInjector injector(plan);
  simmpi::World world(
      config16(),
      injector.wrap(workloads::make_factory(writing_profile(0))));
  injector.arm(world);
  IoWatchdog::Config config;
  config.timeout = 30 * sim::kSecond;
  config.poll_interval = 10 * sim::kSecond;
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  auto& engine = world.engine();
  while (!watchdog.hang_reported() && engine.now() < 2 * sim::kMinute &&
         engine.step()) {
  }
  ASSERT_TRUE(watchdog.hang_reported());
  const auto& report = watchdog.reports().front();
  EXPECT_EQ(report.detected_at, 30 * sim::kSecond);
  EXPECT_EQ(report.silence, 30 * sim::kSecond);
}

TEST(IoWatchdog, WriteRearmsTheSilenceClock) {
  // The app writes every ~0.2 s until the hang; the silence clock must
  // restart from the *last* write, so detection lands a full timeout after
  // it — not a timeout after job start.
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 7;
  plan.trigger_time = 20 * sim::kSecond;
  faults::FaultInjector injector(plan);
  simmpi::World world(
      config16(),
      injector.wrap(workloads::make_factory(writing_profile(5))));
  injector.arm(world);
  IoWatchdog::Config config;
  config.timeout = 15 * sim::kSecond;
  config.poll_interval = sim::kSecond;
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  auto& engine = world.engine();
  while (!watchdog.hang_reported() && engine.now() < 5 * sim::kMinute &&
         engine.step()) {
  }
  ASSERT_TRUE(watchdog.hang_reported());
  const auto& report = watchdog.reports().front();
  const auto last_write = world.last_io_write();
  EXPECT_GT(last_write, 0);
  // Silence was measured from the final write, to the poll that tripped.
  EXPECT_EQ(report.detected_at - report.silence, last_write);
  EXPECT_GE(report.silence, config.timeout);
  // Re-armed: detection is a timeout after the last write, well past a
  // timeout after job start.
  EXPECT_GT(report.detected_at, config.timeout + 10 * sim::kSecond);
}

TEST(IoWatchdog, StopPreventsReports) {
  simmpi::World world(config16(),
                      workloads::make_factory(writing_profile(100000)));
  IoWatchdog::Config config;
  config.timeout = sim::kSecond;
  IoWatchdog watchdog(world, config);
  world.start();
  watchdog.start();
  watchdog.stop();
  world.engine().run_until(30 * sim::kSecond);
  EXPECT_FALSE(watchdog.hang_reported());
}

}  // namespace
}  // namespace parastack::core
