// Property tests of ParaStack's core statistical guarantee: with q chosen
// by the robust model, q^k <= alpha bounds the probability that a healthy
// (i.i.d.) sampling process produces k consecutive suspicions — and a hang
// (all-suspicion stream) is always caught.

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "util/rng.hpp"

namespace parastack::core {
namespace {

constexpr double kAlpha = 0.001;

/// Draw S_crout-like samples: value 0 with probability p_low, otherwise a
/// high mixture — the canonical healthy solver distribution.
double draw(util::Rng& rng, double p_low) {
  if (rng.uniform() < p_low) return 0.0;
  return 0.6 + 0.1 * static_cast<double>(rng.uniform_int(5));
}

struct TrialOutcome {
  int false_triggers = 0;
  long positions = 0;
};

/// Replay the detector's per-sample decision loop (model update + streak
/// counting) over a healthy i.i.d. stream.
TrialOutcome healthy_trial(double p_low, int samples, std::uint64_t seed) {
  util::Rng rng(seed);
  ScroutModel model;
  std::size_t streak = 0;
  TrialOutcome outcome;
  for (int i = 0; i < samples; ++i) {
    const double sample = draw(rng, p_low);
    model.add_sample(sample);
    const auto decision = model.decision(kAlpha);
    if (!decision.ready) continue;
    ++outcome.positions;
    if (sample <= decision.threshold + 1e-12) {
      if (++streak >= decision.k) {
        ++outcome.false_triggers;
        streak = 0;  // "verified" and resumed — keep counting
      }
    } else {
      streak = 0;
    }
  }
  return outcome;
}

TEST(StatisticalGuarantee, FalseTriggerRateBoundedUnderIid) {
  // Aggregate across distributions and seeds: the empirical rate of
  // k-streak events per tested position must respect the alpha bound with
  // margin (q = p_m' + e is a deliberate overestimate of the true p).
  long triggers = 0;
  long positions = 0;
  for (const double p_low : {0.03, 0.08, 0.15, 0.30}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const auto outcome = healthy_trial(p_low, 1200, seed * 7919);
      triggers += outcome.false_triggers;
      positions += outcome.positions;
    }
  }
  ASSERT_GT(positions, 20000);
  const double rate =
      static_cast<double>(triggers) / static_cast<double>(positions);
  // The theoretical per-position bound is alpha = 1e-3; the margin e keeps
  // the empirical rate well under it.
  EXPECT_LT(rate, kAlpha);
}

TEST(StatisticalGuarantee, HangStreamAlwaysTriggers) {
  for (const double p_low : {0.05, 0.2, 0.4}) {
    for (std::uint64_t seed = 100; seed < 106; ++seed) {
      util::Rng rng(seed);
      ScroutModel model;
      // Healthy history...
      for (int i = 0; i < 400; ++i) model.add_sample(draw(rng, p_low));
      // ...then the hang: zeros forever. Detection = streak reaches k,
      // where k may grow as zeros pollute the model (guarded in the real
      // detector; unguarded here as the worst case).
      std::size_t streak = 0;
      bool detected = false;
      for (int i = 0; i < 2000 && !detected; ++i) {
        model.add_sample(0.0);
        const auto decision = model.decision(kAlpha);
        ASSERT_TRUE(decision.ready);
        ASSERT_LE(decision.threshold + 1e-12, 0.5);  // 0 stays suspicious
        if (++streak >= decision.k) detected = true;
      }
      EXPECT_TRUE(detected) << "p_low=" << p_low << " seed=" << seed;
    }
  }
}

TEST(StatisticalGuarantee, QOverestimatesTrueSuspicionProbability) {
  // With enough samples, q = p_m' + e must sit above the true probability
  // of the suspicion event it defines (the 97.5%-confidence claim, §3.2).
  for (const double p_low : {0.05, 0.12, 0.25}) {
    util::Rng rng(5000 + static_cast<std::uint64_t>(p_low * 1000));
    ScroutModel model;
    for (int i = 0; i < 1000; ++i) model.add_sample(draw(rng, p_low));
    const auto decision = model.decision(kAlpha);
    ASSERT_TRUE(decision.ready);
    // True probability of {sample <= threshold}: threshold is 0 here, so
    // it is p_low itself.
    EXPECT_DOUBLE_EQ(decision.threshold, 0.0);
    EXPECT_GT(decision.q, p_low) << "p_low=" << p_low;
  }
}

TEST(StatisticalGuarantee, WorstCaseDetectionLatencyFormula) {
  // §3.1: the worst-case verification cost is I * ceil(log_q alpha)
  // samples; the decision's k must equal that ceiling exactly.
  ScroutModel model;
  util::Rng rng(77);
  for (int i = 0; i < 500; ++i) model.add_sample(draw(rng, 0.10));
  const auto decision = model.decision(kAlpha);
  ASSERT_TRUE(decision.ready);
  const double expected =
      std::ceil(std::log(kAlpha) / std::log(decision.q) - 1e-12);
  EXPECT_DOUBLE_EQ(static_cast<double>(decision.k), expected);
}

}  // namespace
}  // namespace parastack::core
