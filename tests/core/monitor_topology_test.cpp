#include "core/monitor_topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace parastack::core {
namespace {

TopologyConfig tree_config(int fanout, int depth = 0, std::uint64_t seed = 0) {
  TopologyConfig config;
  config.fanout = fanout;
  config.depth = depth;
  config.seed = seed;
  return config;
}

/// Structural invariants every built (and every post-removal) tree must
/// satisfy: one root, parent/child symmetry, levels = parent level + 1,
/// children within the effective fanout, every survivor reachable.
void expect_valid_tree(const MonitorTopology& t) {
  ASSERT_TRUE(t.built());
  int survivors = 0;
  int roots = 0;
  for (int n = 0; n < t.nodes(); ++n) {
    if (t.removed(n)) continue;
    ++survivors;
    const int p = t.parent(n);
    if (p < 0) {
      ++roots;
      EXPECT_EQ(t.level(n), 0) << "root must sit at level 0";
      EXPECT_EQ(t.root(), n);
    } else {
      EXPECT_FALSE(t.removed(p)) << "live node " << n << " has dead parent";
      EXPECT_EQ(t.level(n), t.level(p) + 1);
      const auto& siblings = t.children(p);
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), n),
                siblings.end())
          << "parent " << p << " does not list child " << n;
    }
    const auto& kids = t.children(n);
    EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end()));
    for (const int c : kids) EXPECT_EQ(t.parent(c), n);
  }
  if (survivors > 0) EXPECT_EQ(roots, 1);
}

/// Freshly built trees (no removals yet) additionally respect the fanout
/// bound. Failover can exceed it: a promoted monitor adopts its siblings.
void expect_within_fanout(const MonitorTopology& t) {
  for (int n = 0; n < t.nodes(); ++n) {
    EXPECT_LE(static_cast<int>(t.children(n).size()), t.effective_fanout());
  }
}

TEST(MonitorTopology, BinaryTreeShape) {
  MonitorTopology t;
  t.build(7, tree_config(2));
  expect_valid_tree(t);
  expect_within_fanout(t);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.effective_fanout(), 2);
  // Identity placement: complete binary tree, level order by id.
  EXPECT_EQ(t.children(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(t.children(1), (std::vector<int>{3, 4}));
  EXPECT_EQ(t.children(2), (std::vector<int>{5, 6}));
  EXPECT_EQ(t.max_level(), 2);
}

TEST(MonitorTopology, SingleNodeIsItsOwnRoot) {
  MonitorTopology t;
  t.build(1, tree_config(4));
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(0), -1);
  EXPECT_EQ(t.max_level(), 0);
}

TEST(MonitorTopology, DepthCapWidensFanout) {
  // 100 nodes with fanout 2 would need 6 levels; a depth cap of 2 must
  // widen the fanout until root + fanout + fanout^2 >= 100 (fanout 10).
  MonitorTopology t;
  t.build(100, tree_config(2, 2));
  expect_valid_tree(t);
  expect_within_fanout(t);
  EXPECT_EQ(t.effective_fanout(), 10);
  EXPECT_LE(t.max_level(), 2);
}

TEST(MonitorTopology, SeededPlacementIsDeterministicAndComplete) {
  MonitorTopology a;
  MonitorTopology b;
  a.build(33, tree_config(3, 0, 42));
  b.build(33, tree_config(3, 0, 42));
  expect_valid_tree(a);
  expect_within_fanout(a);
  for (int n = 0; n < 33; ++n) {
    EXPECT_EQ(a.parent(n), b.parent(n));
    EXPECT_EQ(a.level(n), b.level(n));
  }
  // A different seed re-places at least one node (33! permutations; two
  // fixed seeds colliding would be a generator bug worth hearing about).
  MonitorTopology c;
  c.build(33, tree_config(3, 0, 43));
  bool any_moved = false;
  for (int n = 0; n < 33; ++n) {
    if (a.parent(n) != c.parent(n)) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(MonitorTopology, LeafRemovalJustDetaches) {
  MonitorTopology t;
  t.build(7, tree_config(2));
  const auto removal = t.remove(6);
  EXPECT_EQ(removal.promoted, -1);
  EXPECT_EQ(removal.adopted, 0);
  EXPECT_FALSE(removal.root_changed);
  EXPECT_TRUE(t.removed(6));
  EXPECT_EQ(t.children(2), (std::vector<int>{5}));
  expect_valid_tree(t);
}

TEST(MonitorTopology, InteriorRemovalPromotesLowestChildAndAdoptsSiblings) {
  MonitorTopology t;
  t.build(7, tree_config(2));
  const auto removal = t.remove(1);  // children 3, 4
  EXPECT_EQ(removal.promoted, 3);
  EXPECT_EQ(removal.adopted, 1);  // node 4 re-parents under 3
  EXPECT_FALSE(removal.root_changed);
  EXPECT_EQ(t.parent(3), 0);
  EXPECT_EQ(t.parent(4), 3);
  EXPECT_EQ(t.level(3), 1);
  EXPECT_EQ(t.level(4), 2);
  expect_valid_tree(t);
}

TEST(MonitorTopology, RootRemovalMovesTheRoot) {
  MonitorTopology t;
  t.build(7, tree_config(2));
  const auto removal = t.remove(0);
  EXPECT_TRUE(removal.root_changed);
  EXPECT_EQ(removal.new_root, 1);
  EXPECT_EQ(removal.promoted, 1);
  EXPECT_EQ(removal.adopted, 1);  // node 2 adopted by the new root
  EXPECT_EQ(t.root(), 1);
  EXPECT_EQ(t.parent(1), -1);
  EXPECT_EQ(t.level(1), 0);
  EXPECT_EQ(t.parent(2), 1);
  expect_valid_tree(t);
}

TEST(MonitorTopology, CascadeRemovalKeepsSurvivorsConnected) {
  MonitorTopology t;
  t.build(15, tree_config(2));
  // Parent then its promoted child in the same window.
  const auto first = t.remove(1);
  ASSERT_EQ(first.promoted, 3);
  const auto second = t.remove(3);
  EXPECT_GE(second.promoted, 0);
  expect_valid_tree(t);
  // Every survivor still reaches the root.
  for (int n = 0; n < t.nodes(); ++n) {
    if (t.removed(n)) continue;
    int hops = 0;
    int cur = n;
    while (t.parent(cur) >= 0 && hops <= t.nodes()) {
      cur = t.parent(cur);
      ++hops;
    }
    EXPECT_EQ(cur, t.root());
  }
}

TEST(MonitorTopology, RemovingEverythingEmptiesTheTree) {
  MonitorTopology t;
  t.build(4, tree_config(2));
  for (int n = 0; n < 4; ++n) {
    if (!t.removed(n)) t.remove(t.root());
  }
  EXPECT_EQ(t.root(), -1);
  EXPECT_EQ(t.max_level(), -1);
}

TEST(MonitorTopologyDeath, StarConfigRejected) {
  MonitorTopology t;
  EXPECT_DEATH(t.build(4, TopologyConfig{}), "fanout > 0");
}

TEST(MonitorTopologyDeath, DoubleRemovalRejected) {
  MonitorTopology t;
  t.build(7, tree_config(2));
  t.remove(3);
  EXPECT_DEATH(t.remove(3), "removed");
}

}  // namespace
}  // namespace parastack::core
