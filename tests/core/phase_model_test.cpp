// §6 extension: per-phase models. An application alternating between two
// behaviourally different phases confuses one global model (the mixture is
// non-stationary) but is handled cleanly when the application announces
// phase changes.

#include <gtest/gtest.h>

#include <vector>

#include "core/detector.hpp"
#include "faults/injector.hpp"
#include "obs/telemetry.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

using workloads::BenchmarkProfile;
using workloads::CommPattern;

/// Phase A: fine-grained compute+allreduce. Phase B: long alltoall bursts.
std::shared_ptr<const BenchmarkProfile> phase_a_profile(int iterations) {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->name = "PHASE_A";
  profile->iterations = static_cast<std::uint64_t>(iterations);
  profile->reference_ranks = 32;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"a_compute", sim::from_millis(30), 0.12, CommPattern::kHaloBlocking,
       64 * 1024},
      {"a_dot", sim::from_millis(5), 0.15, CommPattern::kAllreduce, 16},
  };
  return profile;
}

struct PhaseRig {
  explicit PhaseRig(std::uint64_t seed, faults::FaultPlan plan,
                    int iterations = 8000)
      : injector(plan),
        world(make_config(seed),
              injector.wrap(workloads::make_factory(phase_a_profile(
                  iterations)))),
        inspector(world),
        detector(world, inspector, DetectorConfig{}) {
    injector.arm(world);
  }

  static simmpi::WorldConfig make_config(std::uint64_t seed) {
    simmpi::WorldConfig config;
    config.nranks = 32;
    config.platform = sim::Platform::tianhe2();
    config.seed = seed;
    config.background_slowdowns = false;
    return config;
  }

  faults::FaultInjector injector;
  simmpi::World world;
  trace::StackInspector inspector;
  HangDetector detector;
};

TEST(PhaseModel, SwitchCreatesFreshModelAndSwitchBackRestores) {
  PhaseRig rig(900, faults::FaultPlan{});
  rig.world.start();
  rig.detector.start();
  rig.world.engine().run_until(40 * sim::kSecond);
  const auto samples_phase0 = rig.detector.model().size();
  ASSERT_GT(samples_phase0, 30u);
  EXPECT_EQ(rig.detector.current_phase(), 0);

  rig.detector.notify_phase_change(1);
  EXPECT_EQ(rig.detector.current_phase(), 1);
  EXPECT_EQ(rig.detector.model().size(), 0u);  // fresh model
  EXPECT_FALSE(rig.detector.randomness_confirmed());

  rig.world.engine().run_until(60 * sim::kSecond);
  const auto samples_phase1 = rig.detector.model().size();
  EXPECT_GT(samples_phase1, 10u);

  rig.detector.notify_phase_change(0);
  EXPECT_GE(rig.detector.model().size(), samples_phase0);  // restored

  rig.detector.notify_phase_change(1);
  EXPECT_GE(rig.detector.model().size(), samples_phase1);
}

TEST(PhaseModel, RepeatedNotificationIsIdempotent) {
  PhaseRig rig(901, faults::FaultPlan{});
  rig.world.start();
  rig.detector.start();
  rig.world.engine().run_until(30 * sim::kSecond);
  const auto samples = rig.detector.model().size();
  rig.detector.notify_phase_change(0);  // already in phase 0
  EXPECT_EQ(rig.detector.model().size(), samples);
}

TEST(PhaseModel, HangStillDetectedWithPhaseAnnouncements) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 13;
  plan.trigger_time = 70 * sim::kSecond;
  PhaseRig rig(902, plan);
  // The application announces a phase boundary every 20 s.
  for (int i = 1; i <= 8; ++i) {
    rig.world.engine().schedule_at(i * 20 * sim::kSecond, [&rig, i] {
      rig.detector.notify_phase_change(i % 2);
    });
  }
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  while (!rig.detector.hang_reported() && engine.now() < 5 * sim::kMinute &&
         engine.step()) {
  }
  ASSERT_TRUE(rig.detector.hang_reported());
  const auto& report = rig.detector.hang_reports().front();
  EXPECT_GT(report.detected_at, rig.injector.record().activated_at);
  ASSERT_EQ(report.faulty_ranks.size(), 1u);
  EXPECT_EQ(report.faulty_ranks[0], 13);
}

TEST(PhaseModel, PhaseChangeAbortsPendingVerification) {
  // Force a verification, then announce a phase change mid-verification;
  // no hang may be reported from the aborted candidate and sampling must
  // resume.
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 5;
  plan.trigger_time = 60 * sim::kSecond;
  PhaseRig rig(903, plan);
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  // Run until the hang is about to be verified, then inject the phase
  // change exactly when a long streak exists.
  bool aborted_once = false;
  while (!rig.detector.hang_reported() && engine.now() < 5 * sim::kMinute &&
         engine.step()) {
    if (!aborted_once && rig.detector.streak() >= 2) {
      rig.detector.notify_phase_change(7);
      aborted_once = true;
      EXPECT_EQ(rig.detector.streak(), 0u);
    }
  }
  // The hang persists, so it is still (re-)detected afterwards in phase 7.
  ASSERT_TRUE(rig.detector.hang_reported());
  EXPECT_EQ(rig.detector.current_phase(), 7);
}

/// Captures phase-change telemetry so the abort is observable from outside.
struct PhaseChangeRecorder final : obs::TelemetrySink {
  void on_phase_change(const obs::PhaseChangeEvent& event) override {
    events.push_back(event);
  }
  std::vector<obs::PhaseChangeEvent> events;
};

TEST(PhaseModel, PhaseChangeMidVerificationDiscardsTheCandidate) {
  // Stronger than the streak-abort case above: wait until the detector has
  // actually ENTERED verification (full-sweep rounds in flight), then
  // announce a phase change. The in-flight candidate must be discarded —
  // no hang report from it — and the abort must be visible in telemetry
  // (PhaseChangeEvent.aborted_verification). Both phases learn healthy
  // samples before the fault so the post-abort phase still has a ready
  // model and can convict the (persistent) hang on its own.
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 11;
  plan.trigger_time = 60 * sim::kSecond;
  PhaseRig rig(904, plan);
  PhaseChangeRecorder recorder;
  rig.world.engine().set_telemetry(&recorder);
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  bool announced_phase3 = false;
  bool aborted_once = false;
  std::size_t reports_at_abort = 0;
  while (!rig.detector.hang_reported() && engine.now() < 5 * sim::kMinute &&
         engine.step()) {
    // Healthy mid-run phase change: phase 3 learns its own model from
    // t=30s until the hang strikes.
    if (!announced_phase3 && engine.now() >= 30 * sim::kSecond) {
      rig.detector.notify_phase_change(3);
      announced_phase3 = true;
    }
    // The hang drives phase 3 into verification; switching back to the
    // stashed phase 0 mid-verification aborts the candidate.
    if (!aborted_once && rig.detector.verifying()) {
      reports_at_abort = rig.detector.hang_reports().size();
      rig.detector.notify_phase_change(0);
      aborted_once = true;
      // The candidate is gone: back to sampling, streak cleared.
      EXPECT_FALSE(rig.detector.verifying());
      EXPECT_EQ(rig.detector.streak(), 0u);
      EXPECT_EQ(rig.detector.hang_reports().size(), reports_at_abort);
    }
  }
  ASSERT_TRUE(aborted_once) << "detector never entered verification";
  // Telemetry recorded both switches; only the 3 -> 0 one aborted a
  // verification, and it resumed phase 0's stashed model.
  ASSERT_EQ(recorder.events.size(), 2u);
  EXPECT_EQ(recorder.events[0].from_phase, 0);
  EXPECT_EQ(recorder.events[0].to_phase, 3);
  EXPECT_FALSE(recorder.events[0].aborted_verification);
  EXPECT_EQ(recorder.events[1].from_phase, 3);
  EXPECT_EQ(recorder.events[1].to_phase, 0);
  EXPECT_TRUE(recorder.events[1].aborted_verification);
  EXPECT_TRUE(recorder.events[1].resumed);
  // The hang is real and persistent: phase 0's restored model rebuilds the
  // streak and convicts it from scratch.
  ASSERT_TRUE(rig.detector.hang_reported());
  EXPECT_GT(rig.detector.hang_reports().front().detected_at,
            rig.injector.record().activated_at);
  EXPECT_EQ(rig.detector.current_phase(), 0);
}

}  // namespace
}  // namespace parastack::core
