#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

using workloads::BenchmarkProfile;
using workloads::CommPattern;

/// A small iterative workload with enough MPI time (~15-25%) for a healthy
/// S_crout distribution: compute + halo + allreduce per iteration.
std::shared_ptr<const BenchmarkProfile> mini_solver(int iterations = 4000) {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->name = "MINI";
  profile->iterations = static_cast<std::uint64_t>(iterations);
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(200);
  profile->phases = {
      {"mini_sweep", sim::from_millis(35), 0.20, CommPattern::kHaloBlocking,
       256 * 1024},
      {"mini_norm", sim::from_millis(6), 0.15, CommPattern::kAllreduce, 64},
  };
  return profile;
}

simmpi::WorldConfig world_config(int nranks, std::uint64_t seed) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

DetectorConfig detector_config() {
  DetectorConfig config;
  config.monitored_count = 6;
  config.seed = 4242;
  return config;
}

struct Rig {
  Rig(int nranks, std::uint64_t seed, faults::FaultPlan plan,
      DetectorConfig det_config,
      std::shared_ptr<const BenchmarkProfile> profile)
      : injector(plan),
        world(world_config(nranks, seed),
              injector.wrap(workloads::make_factory(std::move(profile)))),
        inspector(world),
        detector(world, inspector, det_config) {
    injector.arm(world);
  }

  /// Run until completion, detection, or the deadline.
  void run(sim::Time deadline) {
    world.start();
    detector.start();
    auto& engine = world.engine();
    while (!world.all_finished() && !detector.hang_reported() &&
           engine.now() <= deadline) {
      if (!engine.step()) break;
    }
    detector.stop();
  }

  faults::FaultInjector injector;
  simmpi::World world;
  trace::StackInspector inspector;
  HangDetector detector;
};

faults::FaultPlan hang_plan(simmpi::Rank victim, sim::Time trigger) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = victim;
  plan.trigger_time = trigger;
  return plan;
}

TEST(HangDetector, DetectsComputeHangAndPinpointsVictim) {
  Rig rig(16, 77, hang_plan(9, 40 * sim::kSecond), detector_config(),
          mini_solver());
  rig.run(5 * sim::kMinute);
  ASSERT_TRUE(rig.detector.hang_reported());
  const auto& report = rig.detector.hang_reports().front();
  EXPECT_EQ(report.kind, HangKind::kComputationError);
  ASSERT_EQ(report.faulty_ranks.size(), 1u);
  EXPECT_EQ(report.faulty_ranks[0], 9);
  // Detected after the fault, within a sane delay.
  EXPECT_GT(report.detected_at, rig.injector.record().activated_at);
  const double delay = sim::to_seconds(report.detected_at -
                                       rig.injector.record().activated_at);
  EXPECT_LT(delay, 90.0);
}

TEST(HangDetector, DetectsCommDeadlockAsCommunicationError) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kCommDeadlock;
  plan.victim = 4;
  plan.trigger_time = 40 * sim::kSecond;
  Rig rig(16, 78, plan, detector_config(), mini_solver());
  rig.run(5 * sim::kMinute);
  ASSERT_TRUE(rig.detector.hang_reported());
  const auto& report = rig.detector.hang_reports().front();
  EXPECT_EQ(report.kind, HangKind::kCommunicationError);
  EXPECT_TRUE(report.faulty_ranks.empty());
}

TEST(HangDetector, FreezeOutsideMonitorSetsDetectedAndAttributed) {
  // Freeze the ranks NOT covered by either monitor set — the situation a
  // node freeze at real scale almost always produces (only a constant
  // number of ranks are monitored). The frozen ranks park OUT_MPI, the
  // rest of the job blocks, S_crout drops to zero, and the full-sweep
  // identification names the frozen ranks.
  Rig rig(16, 79, faults::FaultPlan{}, detector_config(), mini_solver());
  std::vector<simmpi::Rank> frozen;
  for (simmpi::Rank r = 0; r < 16; ++r) {
    const auto& set0 = rig.detector.monitor_set(0);
    const auto& set1 = rig.detector.monitor_set(1);
    if (std::find(set0.begin(), set0.end(), r) == set0.end() &&
        std::find(set1.begin(), set1.end(), r) == set1.end()) {
      frozen.push_back(r);
    }
  }
  ASSERT_EQ(frozen.size(), 4u);  // 16 ranks - 2 sets of 6
  rig.world.engine().schedule_at(40 * sim::kSecond, [&rig, frozen] {
    for (const auto r : frozen) rig.world.rank(r).freeze();
  });
  rig.run(5 * sim::kMinute);
  ASSERT_TRUE(rig.detector.hang_reported());
  const auto& report = rig.detector.hang_reports().front();
  EXPECT_EQ(report.kind, HangKind::kComputationError);
  ASSERT_FALSE(report.faulty_ranks.empty());
  for (const auto r : report.faulty_ranks) {
    EXPECT_NE(std::find(frozen.begin(), frozen.end(), r), frozen.end())
        << "rank " << r << " reported faulty but was not frozen";
  }
}

TEST(HangDetector, CleanRunStaysQuiet) {
  Rig rig(16, 80, faults::FaultPlan{}, detector_config(), mini_solver(2500));
  rig.run(10 * sim::kMinute);
  EXPECT_TRUE(rig.world.all_finished());
  EXPECT_FALSE(rig.detector.hang_reported());
}

TEST(HangDetector, MonitorSetsAreDisjointAndSizedC) {
  Rig rig(16, 81, faults::FaultPlan{}, detector_config(), mini_solver());
  const auto& set0 = rig.detector.monitor_set(0);
  const auto& set1 = rig.detector.monitor_set(1);
  EXPECT_EQ(set0.size(), 6u);
  EXPECT_EQ(set1.size(), 6u);
  for (const auto r : set0) {
    EXPECT_EQ(std::count(set1.begin(), set1.end(), r), 0) << "rank " << r;
  }
}

TEST(HangDetector, SmallWorldSplitsSets) {
  DetectorConfig config = detector_config();
  config.monitored_count = 10;  // bigger than nranks/2
  Rig rig(8, 82, faults::FaultPlan{}, config, mini_solver());
  EXPECT_EQ(rig.detector.monitor_set(0).size(), 4u);
  EXPECT_EQ(rig.detector.monitor_set(1).size(), 4u);
}

TEST(HangDetector, AlternatesMonitorSetsEvery30Observations) {
  Rig rig(16, 83, faults::FaultPlan{}, detector_config(), mini_solver());
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  int flips = 0;
  int last_set = rig.detector.active_set();
  std::size_t last_obs = 0;
  while (rig.detector.observations() < 95 && engine.step()) {
    if (rig.detector.active_set() != last_set) {
      ++flips;
      const auto obs = rig.detector.observations();
      EXPECT_EQ((obs - last_obs) % 30, 0u);
      last_obs = obs;
      last_set = rig.detector.active_set();
    }
  }
  EXPECT_GE(flips, 3);
}

TEST(HangDetector, AlternationOffIsAnAblation) {
  DetectorConfig config = detector_config();
  config.enable_set_alternation = false;
  Rig rig(16, 84, faults::FaultPlan{}, config, mini_solver());
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  while (rig.detector.observations() < 70 && engine.step()) {
  }
  EXPECT_EQ(rig.detector.active_set(), 0);
}

TEST(HangDetector, RandomnessGateBlocksEarlyDetection) {
  // Until the runs test accepts the sampling, no hang may be reported even
  // if the ladder is numerically ready.
  Rig rig(16, 85, hang_plan(3, 5 * sim::kSecond), detector_config(),
          mini_solver());
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  while (!rig.detector.hang_reported() && engine.now() < 4 * sim::kMinute &&
         engine.step()) {
    if (!rig.detector.randomness_confirmed()) {
      EXPECT_FALSE(rig.detector.hang_reported());
    }
  }
}

TEST(HangDetector, SuspicionStreakResetsOnHealthySample) {
  Rig rig(16, 86, faults::FaultPlan{}, detector_config(), mini_solver(2500));
  rig.run(10 * sim::kMinute);
  // Over a clean run the streak must never reach the reporting threshold.
  EXPECT_FALSE(rig.detector.hang_reported());
  const auto decision = rig.detector.current_decision();
  if (decision.ready) {
    EXPECT_LT(rig.detector.streak(), decision.k);
  }
}

TEST(HangDetector, ModelGrowsAndTightensOverTime) {
  Rig rig(16, 87, faults::FaultPlan{}, detector_config(), mini_solver(2500));
  rig.run(10 * sim::kMinute);
  EXPECT_GT(rig.detector.model().size(), 100u);
  const auto decision = rig.detector.current_decision();
  ASSERT_TRUE(decision.ready);
  EXPECT_LE(decision.tolerance, 0.1);  // enough samples for a tight level
}

TEST(HangDetector, IntervalCapRespected) {
  DetectorConfig config = detector_config();
  config.max_interval = sim::from_millis(1600);
  // A profile whose S_crout is extremely regular, defeating the runs test:
  // long alternating blocks.
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->iterations = 400;
  profile->reference_ranks = 16;
  profile->setup_time = 0;
  profile->phases = {
      {"block_compute", 3 * sim::kSecond, 0.01, CommPattern::kAlltoall,
       64 * 1024 * 1024},
  };
  Rig rig(16, 88, faults::FaultPlan{}, config, profile);
  rig.world.start();
  rig.detector.start();
  auto& engine = rig.world.engine();
  while (engine.now() < 3 * sim::kMinute && engine.step()) {
  }
  EXPECT_LE(rig.detector.interval(), config.max_interval);
}

TEST(HangDetectorDeath, ConfigValidation) {
  DetectorConfig bad = detector_config();
  bad.monitored_count = 0;
  auto profile = mini_solver();
  simmpi::World world(world_config(8, 1), workloads::make_factory(profile));
  trace::StackInspector inspector(world);
  EXPECT_DEATH(HangDetector(world, inspector, bad), "C must be");
}

}  // namespace
}  // namespace parastack::core
