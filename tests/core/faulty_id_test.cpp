#include "core/faulty_id.hpp"

#include <gtest/gtest.h>

namespace parastack::core {
namespace {

trace::StackSnapshot snap(simmpi::Rank rank, bool in_mpi) {
  trace::StackSnapshot snapshot;
  snapshot.rank = rank;
  snapshot.in_mpi = in_mpi;
  return snapshot;
}

TEST(FaultyId, EmptyRounds) {
  EXPECT_TRUE(identify_faulty_ranks({}).empty());
}

TEST(FaultyId, PersistentlyOutIsFaulty) {
  std::vector<std::vector<trace::StackSnapshot>> rounds(3);
  for (auto& round : rounds) {
    round = {snap(0, true), snap(1, false), snap(2, true)};
  }
  const auto faulty = identify_faulty_ranks(rounds);
  ASSERT_EQ(faulty.size(), 1u);
  EXPECT_EQ(faulty[0], 1);
}

TEST(FaultyId, FlippingBusyWaiterExcluded) {
  // Rank 2 busy-waits: OUT in round 0, IN (MPI_Test) in round 1.
  std::vector<std::vector<trace::StackSnapshot>> rounds(3);
  rounds[0] = {snap(0, true), snap(1, false), snap(2, false)};
  rounds[1] = {snap(0, true), snap(1, false), snap(2, true)};
  rounds[2] = {snap(0, true), snap(1, false), snap(2, false)};
  const auto faulty = identify_faulty_ranks(rounds);
  ASSERT_EQ(faulty.size(), 1u);
  EXPECT_EQ(faulty[0], 1);
}

TEST(FaultyId, AllInMpiMeansCommunicationError) {
  std::vector<std::vector<trace::StackSnapshot>> rounds(3);
  for (auto& round : rounds) {
    round = {snap(0, true), snap(1, true), snap(2, true)};
  }
  EXPECT_TRUE(identify_faulty_ranks(rounds).empty());
}

TEST(FaultyId, MultipleFaultyProcesses) {
  std::vector<std::vector<trace::StackSnapshot>> rounds(2);
  for (auto& round : rounds) {
    round = {snap(0, false), snap(1, true), snap(2, false), snap(3, true)};
  }
  const auto faulty = identify_faulty_ranks(rounds);
  EXPECT_EQ(faulty, (std::vector<simmpi::Rank>{0, 2}));
}

TEST(FaultyIdDeath, MisalignedRounds) {
  std::vector<std::vector<trace::StackSnapshot>> rounds(2);
  rounds[0] = {snap(0, true)};
  rounds[1] = {snap(0, true), snap(1, true)};
  EXPECT_DEATH((void)identify_faulty_ranks(rounds), "align");
}

}  // namespace
}  // namespace parastack::core
