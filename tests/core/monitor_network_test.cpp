#include "core/monitor_network.hpp"

#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

std::shared_ptr<const workloads::BenchmarkProfile> small_profile() {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 4000;
  profile->reference_ranks = 48;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"w", sim::from_millis(25), 0.12,
       workloads::CommPattern::kHaloBlocking, 64 * 1024},
      {"n", sim::from_millis(5), 0.1, workloads::CommPattern::kAllreduce, 16},
  };
  return profile;
}

simmpi::WorldConfig config48(std::uint64_t seed = 21) {
  simmpi::WorldConfig config;
  config.nranks = 48;
  config.platform = sim::Platform::tianhe2();  // 2 nodes
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(MonitorNetwork, OneMonitorPerNode) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  EXPECT_EQ(network.monitor_count(), 2);
}

TEST(MonitorNetwork, ActiveMonitorsAreDistinctHostingNodes) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  EXPECT_EQ(network.active_monitors_for({0, 1, 2}), 1);       // all node 0
  EXPECT_EQ(network.active_monitors_for({0, 30}), 2);         // both nodes
  EXPECT_EQ(network.active_monitors_for({25, 26, 47}), 1);    // all node 1
}

TEST(MonitorNetwork, MeasurementMatchesDirectInspection) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(5 * sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  const std::vector<simmpi::Rank> set = {1, 7, 13, 29, 41};
  // Direct ground truth (states do not change while no events run).
  int out = 0;
  for (const auto r : set) {
    if (!world.rank(r).in_mpi()) ++out;
  }
  const auto measurement = network.measure(set);
  EXPECT_DOUBLE_EQ(measurement.scrout,
                   static_cast<double>(out) / static_cast<double>(set.size()));
  EXPECT_EQ(measurement.ranks_traced, 5);
  EXPECT_EQ(measurement.active_monitors, 2);
  EXPECT_GT(measurement.aggregation_latency, 0);
}

TEST(MonitorNetwork, TrafficIsBoundedByActiveMonitors) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  network.measure({0, 1, 2});  // one active monitor: no messages needed
  EXPECT_EQ(network.messages_sent(), 0u);
  network.measure({0, 30});  // two active monitors: one partial count
  EXPECT_EQ(network.messages_sent(), 1u);
  EXPECT_EQ(network.bytes_sent(), 8u);
  EXPECT_EQ(network.samples(), 2u);
}

TEST(MonitorNetwork, DetectorBackendProducesSameVerdicts) {
  // Same seed, with and without the monitor-network backend: identical
  // detection outcome (the backend changes accounting, not observations).
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 17;
  plan.trigger_time = 40 * sim::kSecond;

  sim::Time detected_direct = -1;
  sim::Time detected_network = -1;
  for (int variant = 0; variant < 2; ++variant) {
    faults::FaultInjector injector(plan);
    simmpi::World world(config48(),
                        injector.wrap(workloads::make_factory(small_profile())));
    injector.arm(world);
    trace::StackInspector::Config icfg;
    icfg.seed = 99;
    trace::StackInspector inspector(world, icfg);
    DetectorConfig dcfg;
    dcfg.seed = 1234;
    HangDetector detector(world, inspector, dcfg);
    MonitorNetwork network(world, inspector);
    if (variant == 1) detector.use_monitor_network(&network);
    world.start();
    detector.start();
    auto& engine = world.engine();
    while (!detector.hang_reported() && engine.now() < 4 * sim::kMinute &&
           engine.step()) {
    }
    ASSERT_TRUE(detector.hang_reported());
    (variant == 0 ? detected_direct : detected_network) =
        detector.hang_reports().front().detected_at;
  }
  EXPECT_EQ(detected_direct, detected_network);
}

TEST(MonitorNetworkDeath, EmptySetRejected) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  EXPECT_DEATH((void)network.measure({}), "empty");
}

// --- Accounting invariants (healthy path) ----------------------------------

simmpi::WorldConfig config96(std::uint64_t seed = 33) {
  simmpi::WorldConfig config;
  config.nranks = 96;
  config.platform = sim::Platform::tianhe2();  // 24 cores/node -> 4 nodes
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(MonitorNetwork, AccountingInvariantsAcrossMultiNodeSets) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  ASSERT_EQ(network.monitor_count(), 4);

  // Each sample sends (active monitors - 1) partial counts of 8 bytes and
  // traces exactly the set, regardless of which node hosts the lead.
  network.measure({0});                  // 1 active (lead node): 0 messages
  network.measure({0, 24});              // 2 active: 1 message
  network.measure({0, 24, 48, 72});      // 4 active: 3 messages
  network.measure({25, 49});             // 2 active, lead node absent: 1
  EXPECT_EQ(network.messages_sent(), 0u + 1u + 3u + 1u);
  EXPECT_EQ(network.bytes_sent(), 8u * 5u);
  EXPECT_EQ(network.ranks_traced_total(), 1u + 2u + 4u + 2u);
  EXPECT_EQ(network.samples(), 4u);
  EXPECT_EQ(network.lead_monitor(), 0);
  EXPECT_FALSE(network.tool_faults_active());
}

TEST(MonitorNetwork, InactiveToolFaultPlanKeepsHealthyPath) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  network.set_tool_faults(faults::ToolFaultPlan{});  // all defaults: inert
  EXPECT_FALSE(network.tool_faults_active());
  network.measure({0, 24});
  EXPECT_EQ(network.messages_sent(), 1u);
  EXPECT_EQ(network.monitor_crashes(), 0u);
}

// --- Tool-fault behaviors --------------------------------------------------

TEST(MonitorNetworkFaults, TotalLossCoversOnlyTheLeadNode) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  faults::ToolFaultPlan plan;
  plan.loss_probability = 1.0;
  plan.max_retries = 2;
  plan.seed = 7;
  network.set_tool_faults(plan);
  ASSERT_TRUE(network.tool_faults_active());

  // Lead-on-victim-node edge case: ranks 0 and 1 live on the lead's node,
  // so their counts never cross the network and survive total loss.
  const auto m = network.measure({0, 1, 30, 60});
  EXPECT_EQ(m.ranks_traced, 4);  // every alive monitor still traces
  EXPECT_EQ(m.partials_missing, 2);
  EXPECT_DOUBLE_EQ(m.coverage, 0.5);
  EXPECT_FALSE(m.degraded);  // the lead's own ranks keep it sighted
  EXPECT_EQ(m.retries, 2 * 2);  // both senders exhaust max_retries
  // Per sender: 1 original + 2 retries = 3 messages.
  EXPECT_EQ(network.messages_sent(), 6u);
  EXPECT_EQ(network.partials_lost(), 2u);
  EXPECT_EQ(network.retransmissions(), 4u);
  // Timeout + backoff penalties surface in the aggregation latency.
  EXPECT_GT(m.aggregation_latency,
            plan.sample_timeout * 2 + plan.retry_backoff);
}

TEST(MonitorNetworkFaults, ScheduledCrashSilencesItsNode) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(2 * sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  faults::ToolFaultPlan plan;
  plan.monitor_crashes.push_back({.monitor = 1, .at = sim::kSecond});
  network.set_tool_faults(plan);

  const auto m = network.measure({0, 30, 60});  // nodes 0, 1, 2
  EXPECT_EQ(network.monitor_crashes(), 1u);
  EXPECT_FALSE(network.monitor_alive(1));
  EXPECT_TRUE(network.monitor_alive(0));
  EXPECT_EQ(m.partials_missing, 1);       // node 1's count never comes
  EXPECT_EQ(m.ranks_traced, 2);           // dead monitors trace nothing
  EXPECT_NEAR(m.coverage, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(network.lead_monitor(), 0);   // non-lead crash: no failover
  EXPECT_EQ(network.lead_failovers(), 0u);
}

TEST(MonitorNetworkFaults, DeadNodeOnlySetIsBlind) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(2 * sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  faults::ToolFaultPlan plan;
  plan.monitor_crashes.push_back({.monitor = 1, .at = sim::kSecond});
  network.set_tool_faults(plan);

  const auto m = network.measure({30, 31, 40});  // all on dead node 1
  EXPECT_TRUE(m.degraded);
  EXPECT_DOUBLE_EQ(m.coverage, 0.0);
  EXPECT_EQ(m.ranks_traced, 0);
  EXPECT_DOUBLE_EQ(m.scrout, 0.0);
}

TEST(MonitorNetworkFaults, LeadCrashFailsOverToLowestSurvivor) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(2 * sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  faults::ToolFaultPlan plan;
  plan.lead_crash_at = sim::kSecond;
  plan.reregistration_latency = sim::from_millis(250);
  network.set_tool_faults(plan);

  const auto first = network.measure({0, 30, 60});
  EXPECT_EQ(network.lead_monitor(), 1);  // lowest surviving id takes over
  EXPECT_EQ(network.lead_failovers(), 1u);
  EXPECT_EQ(network.monitor_crashes(), 1u);
  // The re-registration stall is charged to the first post-failover sample.
  EXPECT_GE(first.aggregation_latency, plan.reregistration_latency);
  const auto second = network.measure({0, 30, 60});
  EXPECT_LT(second.aggregation_latency, plan.reregistration_latency);
  // Node 0's monitor is dead; its ranks are uncovered from now on.
  EXPECT_EQ(second.partials_missing, 1);
  EXPECT_NEAR(second.coverage, 2.0 / 3.0, 1e-12);
}

TEST(MonitorNetworkFaults, RandomCrashVictimsAreNonLeadAndSeedStable) {
  for (int repeat = 0; repeat < 2; ++repeat) {
    simmpi::World world(config96(), workloads::make_factory(small_profile()));
    world.start();
    world.engine().run_until(2 * sim::kSecond);
    trace::StackInspector inspector(world);
    MonitorNetwork network(world, inspector);
    faults::ToolFaultPlan plan;
    plan.monitor_crashes.push_back({.monitor = -1, .at = sim::kSecond});
    plan.seed = 1234;
    network.set_tool_faults(plan);
    network.measure({0, 30, 60, 80});
    EXPECT_EQ(network.monitor_crashes(), 1u);
    EXPECT_TRUE(network.monitor_alive(0));  // the lead is never the victim
    EXPECT_EQ(network.lead_failovers(), 0u);
  }
}

TEST(MonitorNetworkFaults, LossSequenceIsAPureFunctionOfThePlanSeed) {
  std::vector<double> coverages[2];
  std::uint64_t messages[2] = {0, 0};
  for (int repeat = 0; repeat < 2; ++repeat) {
    simmpi::World world(config96(), workloads::make_factory(small_profile()));
    world.start();
    world.engine().run_until(sim::kSecond);
    trace::StackInspector inspector(world);
    MonitorNetwork network(world, inspector);
    faults::ToolFaultPlan plan;
    plan.loss_probability = 0.4;
    plan.max_retries = 1;
    plan.seed = 99;
    network.set_tool_faults(plan);
    for (int i = 0; i < 20; ++i) {
      coverages[repeat].push_back(network.measure({0, 24, 48, 72}).coverage);
    }
    messages[repeat] = network.messages_sent();
  }
  EXPECT_EQ(coverages[0], coverages[1]);
  EXPECT_EQ(messages[0], messages[1]);
  EXPECT_GT(messages[0], 3u * 20u);  // some loss actually happened
}

TEST(MonitorNetworkFaultsDeath, ArmingAfterSamplingRejected) {
  simmpi::World world(config96(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  network.measure({0});
  faults::ToolFaultPlan plan;
  plan.loss_probability = 0.5;
  EXPECT_DEATH(network.set_tool_faults(plan), "before the first sample");
}

}  // namespace
}  // namespace parastack::core
