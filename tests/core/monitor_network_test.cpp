#include "core/monitor_network.hpp"

#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

std::shared_ptr<const workloads::BenchmarkProfile> small_profile() {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 4000;
  profile->reference_ranks = 48;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"w", sim::from_millis(25), 0.12,
       workloads::CommPattern::kHaloBlocking, 64 * 1024},
      {"n", sim::from_millis(5), 0.1, workloads::CommPattern::kAllreduce, 16},
  };
  return profile;
}

simmpi::WorldConfig config48(std::uint64_t seed = 21) {
  simmpi::WorldConfig config;
  config.nranks = 48;
  config.platform = sim::Platform::tianhe2();  // 2 nodes
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(MonitorNetwork, OneMonitorPerNode) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  EXPECT_EQ(network.monitor_count(), 2);
}

TEST(MonitorNetwork, ActiveMonitorsAreDistinctHostingNodes) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  EXPECT_EQ(network.active_monitors_for({0, 1, 2}), 1);       // all node 0
  EXPECT_EQ(network.active_monitors_for({0, 30}), 2);         // both nodes
  EXPECT_EQ(network.active_monitors_for({25, 26, 47}), 1);    // all node 1
}

TEST(MonitorNetwork, MeasurementMatchesDirectInspection) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(5 * sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  const std::vector<simmpi::Rank> set = {1, 7, 13, 29, 41};
  // Direct ground truth (states do not change while no events run).
  int out = 0;
  for (const auto r : set) {
    if (!world.rank(r).in_mpi()) ++out;
  }
  const auto measurement = network.measure(set);
  EXPECT_DOUBLE_EQ(measurement.scrout,
                   static_cast<double>(out) / static_cast<double>(set.size()));
  EXPECT_EQ(measurement.ranks_traced, 5);
  EXPECT_EQ(measurement.active_monitors, 2);
  EXPECT_GT(measurement.aggregation_latency, 0);
}

TEST(MonitorNetwork, TrafficIsBoundedByActiveMonitors) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  network.measure({0, 1, 2});  // one active monitor: no messages needed
  EXPECT_EQ(network.messages_sent(), 0u);
  network.measure({0, 30});  // two active monitors: one partial count
  EXPECT_EQ(network.messages_sent(), 1u);
  EXPECT_EQ(network.bytes_sent(), 8u);
  EXPECT_EQ(network.samples(), 2u);
}

TEST(MonitorNetwork, DetectorBackendProducesSameVerdicts) {
  // Same seed, with and without the monitor-network backend: identical
  // detection outcome (the backend changes accounting, not observations).
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 17;
  plan.trigger_time = 40 * sim::kSecond;

  sim::Time detected_direct = -1;
  sim::Time detected_network = -1;
  for (int variant = 0; variant < 2; ++variant) {
    faults::FaultInjector injector(plan);
    simmpi::World world(config48(),
                        injector.wrap(workloads::make_factory(small_profile())));
    injector.arm(world);
    trace::StackInspector::Config icfg;
    icfg.seed = 99;
    trace::StackInspector inspector(world, icfg);
    DetectorConfig dcfg;
    dcfg.seed = 1234;
    HangDetector detector(world, inspector, dcfg);
    MonitorNetwork network(world, inspector);
    if (variant == 1) detector.use_monitor_network(&network);
    world.start();
    detector.start();
    auto& engine = world.engine();
    while (!detector.hang_reported() && engine.now() < 4 * sim::kMinute &&
           engine.step()) {
    }
    ASSERT_TRUE(detector.hang_reported());
    (variant == 0 ? detected_direct : detected_network) =
        detector.hang_reports().front().detected_at;
  }
  EXPECT_EQ(detected_direct, detected_network);
}

TEST(MonitorNetworkDeath, EmptySetRejected) {
  simmpi::World world(config48(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  EXPECT_DEATH((void)network.measure({}), "empty");
}

}  // namespace
}  // namespace parastack::core
