#include "core/model.hpp"

#include <gtest/gtest.h>

#include "stats/binomial.hpp"
#include "stats/geometric.hpp"
#include "util/rng.hpp"

namespace parastack::core {
namespace {

constexpr double kAlpha = 0.001;

void add_many(ScroutModel& model, double value, int count) {
  for (int i = 0; i < count; ++i) model.add_sample(value);
}

TEST(ScroutModel, NotReadyWhenEmptyOrTiny) {
  ScroutModel model;
  EXPECT_FALSE(model.decision(kAlpha).ready);
  add_many(model, 0.9, 5);
  add_many(model, 0.2, 2);
  EXPECT_FALSE(model.decision(kAlpha).ready);
}

TEST(ScroutModel, DegenerateSingleValueNeverReady) {
  // All samples identical: no usable suspicion quantile exists; detection
  // must stay disabled rather than call everything (or nothing) a hang.
  ScroutModel model;
  add_many(model, 1.0, 500);
  EXPECT_FALSE(model.decision(kAlpha).ready);
}

TEST(ScroutModel, CoarseToleranceAtSmallSampleSize) {
  // ~15 samples with ~50/50 mass: the e=0.3 level (n_m ~ 11) applies.
  ScroutModel model;
  add_many(model, 0.3, 7);
  add_many(model, 0.9, 8);
  const auto decision = model.decision(kAlpha);
  ASSERT_TRUE(decision.ready);
  EXPECT_DOUBLE_EQ(decision.tolerance, 0.3);
  EXPECT_DOUBLE_EQ(decision.threshold, 0.3);
  EXPECT_NEAR(decision.p_m_prime, 7.0 / 15.0, 1e-9);
  EXPECT_NEAR(decision.q, 7.0 / 15.0 + 0.3, 1e-9);
}

TEST(ScroutModel, TighterToleranceAsSamplesAccumulate) {
  ScroutModel model;
  util::Rng rng(5);
  // 10% mass near zero, the rest high: a healthy solver distribution.
  for (int i = 0; i < 300; ++i) {
    model.add_sample(rng.uniform() < 0.10 ? 0.0 : 0.8 + 0.1 * (i % 3));
  }
  const auto decision = model.decision(kAlpha);
  ASSERT_TRUE(decision.ready);
  EXPECT_DOUBLE_EQ(decision.tolerance, 0.05);
  EXPECT_DOUBLE_EQ(decision.threshold, 0.0);
  EXPECT_NEAR(decision.p_m_prime, 0.10, 0.05);
  EXPECT_LE(decision.q, 0.2);
  // k = ceil(log_q alpha) stays small for a confident model.
  EXPECT_LE(decision.k, 5u);
  EXPECT_GE(decision.k, 3u);
}

TEST(ScroutModel, QNeverBelowPmPrimeAndCapped) {
  ScroutModel model;
  // Heavy mass at zero (an FT-like distribution).
  add_many(model, 0.0, 60);
  add_many(model, 1.0, 40);
  const auto decision = model.decision(kAlpha);
  ASSERT_TRUE(decision.ready);
  EXPECT_GE(decision.q, decision.p_m_prime);
  EXPECT_LE(decision.q, ScroutModel::kMaxQ);
  // With F(0) = 0.6, suspicion prob is large -> long streak required.
  EXPECT_GT(decision.k, 10u);
}

TEST(ScroutModel, ThresholdPicksDiscretePointNearOptimalP) {
  ScroutModel model;
  // Support {0.0: 4%, 0.1: 8%, 0.5: 50%, 1.0: 100%} with 200 samples.
  add_many(model, 0.0, 8);
  add_many(model, 0.1, 8);
  add_many(model, 0.5, 84);
  add_many(model, 1.0, 100);
  const auto decision = model.decision(kAlpha);
  ASSERT_TRUE(decision.ready);
  // Optimal p for e=0.05 is 0.06; the discrete candidates around it are
  // F(0)=0.04 and F(0.1)=0.08; both beat F(0.5)=0.5 on sample demand.
  EXPECT_LE(decision.threshold, 0.1);
}

TEST(ScroutModel, ThinHalfHalvesHistory) {
  ScroutModel model;
  add_many(model, 0.5, 10);
  add_many(model, 0.9, 10);
  model.thin_half();
  EXPECT_EQ(model.size(), 10u);
}

TEST(ScroutModel, HangSamplesDoNotDisableDetection) {
  // Simulate detection dynamics: a mature model, then a hang floods zeros.
  ScroutModel model;
  util::Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    model.add_sample(rng.uniform() < 0.08 ? 0.0 : 0.9);
  }
  auto decision = model.decision(kAlpha);
  ASSERT_TRUE(decision.ready);
  const auto k0 = decision.k;
  // Zeros pour in during the hang; k may grow, but the threshold keeps
  // catching the hang state (0 <= t) and k stays bounded by the q cap.
  for (int i = 0; i < 50; ++i) {
    model.add_sample(0.0);
    decision = model.decision(kAlpha);
    ASSERT_TRUE(decision.ready);
    EXPECT_GE(decision.threshold, 0.0);
  }
  EXPECT_LE(decision.k,
            stats::consecutive_suspicions_required(ScroutModel::kMaxQ, kAlpha));
  EXPECT_GE(decision.k, k0);
}

TEST(ScroutModel, DecisionSampleSizeTracksModel) {
  ScroutModel model;
  add_many(model, 0.4, 12);
  EXPECT_EQ(model.decision(kAlpha).sample_size, 12u);
}

}  // namespace
}  // namespace parastack::core
