// Integration tests of the transient-slowdown filter (paper §3.3): injected
// slowdowns on a fine-grained workload must be absorbed (reported as
// slowdowns, not hangs), and real hangs must still be confirmed.

#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

using workloads::BenchmarkProfile;
using workloads::CommPattern;

/// Fine-grained CG-like solver: sub-100ms phases, so even a slowed rank
/// crosses MPI boundaries within the filter's observation window.
std::shared_ptr<const BenchmarkProfile> fine_solver(int iterations = 6000) {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->name = "FINE";
  profile->iterations = static_cast<std::uint64_t>(iterations);
  profile->reference_ranks = 32;
  profile->setup_time = sim::from_millis(200);
  profile->phases = {
      {"spmv", sim::from_millis(24), 0.12, CommPattern::kHaloBlocking,
       96 * 1024},
      {"dot", sim::from_millis(4), 0.15, CommPattern::kAllreduce, 16},
  };
  return profile;
}

struct SlowdownRig {
  SlowdownRig(std::uint64_t seed, faults::FaultPlan plan)
      : injector(plan),
        world(make_config(seed),
              injector.wrap(workloads::make_factory(fine_solver()))),
        inspector(world),
        detector(world, inspector, DetectorConfig{}) {
    injector.arm(world);
  }

  static simmpi::WorldConfig make_config(std::uint64_t seed) {
    simmpi::WorldConfig config;
    config.nranks = 32;
    config.platform = sim::Platform::stampede();
    config.seed = seed;
    config.background_slowdowns = false;
    return config;
  }

  void run(sim::Time deadline) {
    world.start();
    detector.start();
    auto& engine = world.engine();
    while (!world.all_finished() && !detector.hang_reported() &&
           engine.now() <= deadline && engine.step()) {
    }
    detector.stop();
  }

  faults::FaultInjector injector;
  simmpi::World world;
  trace::StackInspector inspector;
  HangDetector detector;
};

TEST(SlowdownFilterIntegration, InjectedSlowdownNotReportedAsHang) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kTransientSlowdown;
  plan.victim = 11;
  plan.trigger_time = 60 * sim::kSecond;
  plan.slowdown_duration = 12 * sim::kSecond;
  plan.slowdown_factor = 4.0;
  SlowdownRig rig(501, plan);
  rig.run(4 * sim::kMinute);
  EXPECT_FALSE(rig.detector.hang_reported());
  EXPECT_TRUE(rig.injector.record().activated());
}

TEST(SlowdownFilterIntegration, SevereSlowdownsAcrossSeeds) {
  int hang_reports = 0;
  int slowdown_absorptions = 0;
  for (std::uint64_t seed = 600; seed < 606; ++seed) {
    faults::FaultPlan plan;
    plan.type = faults::FaultType::kTransientSlowdown;
    plan.victim = static_cast<simmpi::Rank>(seed % 32);
    plan.trigger_time = 50 * sim::kSecond;
    plan.slowdown_duration = 8 * sim::kSecond;
    plan.slowdown_factor = 3.0;
    SlowdownRig rig(seed, plan);
    rig.run(3 * sim::kMinute);
    if (rig.detector.hang_reported()) ++hang_reports;
    slowdown_absorptions +=
        static_cast<int>(rig.detector.slowdown_reports().size());
  }
  // The paper reports zero false alarms; slowdowns either never reach the
  // verification stage or are absorbed by the filter.
  EXPECT_EQ(hang_reports, 0);
}

TEST(SlowdownFilterIntegration, RealHangSurvivesTheFilter) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 7;
  plan.trigger_time = 60 * sim::kSecond;
  SlowdownRig rig(502, plan);
  rig.run(4 * sim::kMinute);
  ASSERT_TRUE(rig.detector.hang_reported());
  EXPECT_EQ(rig.detector.hang_reports().front().faulty_ranks.size(), 1u);
}

TEST(SlowdownFilterIntegration, DisabledFilterStillDetectsHangs) {
  DetectorConfig config;
  config.enable_slowdown_filter = false;
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 3;
  plan.trigger_time = 60 * sim::kSecond;
  faults::FaultInjector injector(plan);
  simmpi::World world(SlowdownRig::make_config(503),
                      injector.wrap(workloads::make_factory(fine_solver())));
  injector.arm(world);
  trace::StackInspector inspector(world);
  HangDetector detector(world, inspector, config);
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (!detector.hang_reported() && engine.now() < 4 * sim::kMinute &&
         engine.step()) {
  }
  EXPECT_TRUE(detector.hang_reported());
}

}  // namespace
}  // namespace parastack::core
