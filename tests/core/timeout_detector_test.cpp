#include "core/timeout_detector.hpp"

#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

using workloads::BenchmarkProfile;
using workloads::CommPattern;

std::shared_ptr<const BenchmarkProfile> steady_solver() {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->iterations = 3000;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"sweep", sim::from_millis(30), 0.15, CommPattern::kHaloBlocking,
       128 * 1024},
      {"norm", sim::from_millis(5), 0.1, CommPattern::kAllreduce, 64},
  };
  return profile;
}

/// FT-like: long compute blocks followed by multi-second alltoalls whose
/// low-S_out stretches defeat small fixed timeouts (paper Table 1).
std::shared_ptr<const BenchmarkProfile> bursty_solver() {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->iterations = 60;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"fft_chunk", 3 * sim::kSecond, 0.05, CommPattern::kAlltoall,
       std::size_t{3} * 1024 * 1024 * 1024},
  };
  return profile;
}

simmpi::WorldConfig world_config(std::uint64_t seed) {
  simmpi::WorldConfig config;
  config.nranks = 16;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TimeoutDetector::Config baseline_config(sim::Time interval, int k) {
  TimeoutDetector::Config config;
  config.monitored_count = 6;
  config.interval = interval;
  config.k = k;
  return config;
}

TEST(TimeoutDetector, DetectsARealHang) {
  // Pick a victim the baseline does NOT monitor: with the faulty (OUT_MPI)
  // rank inside its one fixed set, S_crout never reaches zero and the
  // baseline misses — the corner case ParaStack's set alternation fixes.
  simmpi::World probe_world(world_config(5),
                            workloads::make_factory(steady_solver()));
  trace::StackInspector probe_inspector(probe_world);
  TimeoutDetector probe(probe_world, probe_inspector,
                        baseline_config(sim::from_millis(400), 5));
  simmpi::Rank victim = -1;
  for (simmpi::Rank r = 0; r < 16; ++r) {
    bool monitored = false;
    for (const auto m : probe.monitored()) {
      if (m == r) monitored = true;
    }
    if (!monitored) {
      victim = r;
      break;
    }
  }
  ASSERT_GE(victim, 0);

  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = victim;
  plan.trigger_time = 20 * sim::kSecond;
  faults::FaultInjector injector(plan);
  simmpi::World world(world_config(5),
                      injector.wrap(workloads::make_factory(steady_solver())));
  injector.arm(world);
  trace::StackInspector inspector(world);
  TimeoutDetector detector(world, inspector,
                           baseline_config(sim::from_millis(400), 5));
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (!detector.hang_reported() && engine.now() < 2 * sim::kMinute &&
         engine.step()) {
  }
  ASSERT_TRUE(detector.hang_reported());
  const auto detected_at = detector.reports().front().detected_at;
  EXPECT_GT(detected_at, injector.record().activated_at);
  // Roughly K * I after the hang (paper Table 1's delay column).
  EXPECT_LT(sim::to_seconds(detected_at - injector.record().activated_at),
            15.0);
}

TEST(TimeoutDetector, SmallTimeoutFalseAlarmsOnBurstyApp) {
  // (I=400ms, K=5) fires during a healthy multi-second alltoall.
  simmpi::World world(world_config(6),
                      workloads::make_factory(bursty_solver()));
  trace::StackInspector inspector(world);
  TimeoutDetector detector(world, inspector,
                           baseline_config(sim::from_millis(400), 5));
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (!detector.hang_reported() && !world.all_finished() && engine.step()) {
  }
  EXPECT_TRUE(detector.hang_reported());  // false alarm: no fault exists
}

TEST(TimeoutDetector, LargeTimeoutSurvivesBurstyApp) {
  simmpi::World world(world_config(6),
                      workloads::make_factory(bursty_solver()));
  trace::StackInspector inspector(world);
  // K * I = 8s exceeds the app's low stretches.
  TimeoutDetector detector(world, inspector,
                           baseline_config(sim::from_millis(800), 10));
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (!detector.hang_reported() && !world.all_finished() &&
         engine.now() < 5 * sim::kMinute && engine.step()) {
  }
  EXPECT_FALSE(detector.hang_reported());
}

TEST(TimeoutDetector, StreakResetsOnHealthyObservation) {
  simmpi::World world(world_config(7),
                      workloads::make_factory(steady_solver()));
  trace::StackInspector inspector(world);
  TimeoutDetector detector(world, inspector,
                           baseline_config(sim::from_millis(400), 5));
  world.start();
  detector.start();
  auto& engine = world.engine();
  for (int i = 0; i < 200000 && !world.all_finished(); ++i) {
    if (!engine.step()) break;
    if (engine.now() > 30 * sim::kSecond) break;
  }
  EXPECT_FALSE(detector.hang_reported());
}

TEST(TimeoutDetector, NoReportAfterJobCompletion) {
  // A finished job cannot hang. Once every rank completed, the idle ranks
  // read as OUT_MPI, so a tick that still fires would walk the streak to a
  // bogus post-completion detection — the tick must check all_finished().
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->iterations = 5;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(10);
  profile->phases = {
      {"blip", sim::from_millis(5), 0.1, CommPattern::kAllreduce, 64},
  };
  simmpi::World world(world_config(11), workloads::make_factory(profile));
  trace::StackInspector inspector(world);
  // Every observation counts as "low", so any tick surviving past
  // completion would reach K quickly.
  auto config = baseline_config(sim::from_millis(200), 3);
  config.low_threshold = 1.0;
  TimeoutDetector detector(world, inspector, config);
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (engine.step()) {  // drain everything, detector ticks included
  }
  EXPECT_TRUE(world.all_finished());
  EXPECT_FALSE(detector.hang_reported());
}

TEST(TimeoutDetector, DetectsExactlyAtStreakK) {
  // With low_threshold = 1 every sample is suspicious, so the K-th tick —
  // and exactly the K-th — must produce the report: detection at K * I.
  simmpi::World world(world_config(12),
                      workloads::make_factory(steady_solver()));
  trace::StackInspector inspector(world);
  auto config = baseline_config(sim::from_millis(500), 4);
  config.low_threshold = 1.0;
  TimeoutDetector detector(world, inspector, config);
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (!detector.hang_reported() && engine.now() < 30 * sim::kSecond &&
         engine.step()) {
  }
  ASSERT_TRUE(detector.hang_reported());
  EXPECT_EQ(detector.reports().front().detected_at,
            4 * sim::from_millis(500));
  EXPECT_EQ(detector.reports().size(), 1u);  // done_: no second report
}

TEST(TimeoutDetector, RearmsAfterTransientLowStretchAndStillDetects) {
  // Bursty alltoalls advance the streak part-way; the compute stretches
  // reset it (re-arm). The config that survives the healthy app
  // (LargeTimeoutSurvivesBurstyApp) must still catch a real hang injected
  // later — a reset streak is re-armed, not disarmed.
  simmpi::World probe_world(world_config(6),
                            workloads::make_factory(bursty_solver()));
  trace::StackInspector probe_inspector(probe_world);
  TimeoutDetector probe(probe_world, probe_inspector,
                        baseline_config(sim::from_millis(800), 10));
  simmpi::Rank victim = -1;
  for (simmpi::Rank r = 0; r < 16; ++r) {
    bool monitored = false;
    for (const auto m : probe.monitored()) {
      if (m == r) monitored = true;
    }
    if (!monitored) {
      victim = r;
      break;
    }
  }
  ASSERT_GE(victim, 0);

  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = victim;
  plan.trigger_time = 40 * sim::kSecond;
  faults::FaultInjector injector(plan);
  simmpi::World world(world_config(6),
                      injector.wrap(workloads::make_factory(bursty_solver())));
  injector.arm(world);
  trace::StackInspector inspector(world);
  TimeoutDetector detector(world, inspector,
                           baseline_config(sim::from_millis(800), 10));
  world.start();
  detector.start();
  auto& engine = world.engine();
  while (!detector.hang_reported() && engine.now() < 5 * sim::kMinute &&
         engine.step()) {
  }
  ASSERT_TRUE(detector.hang_reported());
  const auto detected_at = detector.reports().front().detected_at;
  const auto activated_at = injector.record().activated_at;
  EXPECT_GT(detected_at, activated_at);
  // The full streak must have been rebuilt after the fault: at least K
  // intervals of post-fault silence before the verdict.
  EXPECT_GE(detected_at - activated_at, 10 * sim::from_millis(800));
}

TEST(TimeoutDetector, StopPreventsFurtherReports) {
  simmpi::World world(world_config(8),
                      workloads::make_factory(bursty_solver()));
  trace::StackInspector inspector(world);
  TimeoutDetector detector(world, inspector,
                           baseline_config(sim::from_millis(400), 5));
  world.start();
  detector.start();
  detector.stop();
  world.engine().run_until(30 * sim::kSecond);
  EXPECT_FALSE(detector.hang_reported());
}

}  // namespace
}  // namespace parastack::core
