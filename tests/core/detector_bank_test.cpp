// DetectorBank: several Detector implementations attached to ONE simulated
// job, started and stopped together, with telemetry-label collisions
// resolved at add() time. This is what lets a single trial compare the
// paper's tool against the timeout strawman and the IO-Watchdog incumbent
// without re-simulating.

#include "core/detector_bank.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/detector.hpp"
#include "core/io_watchdog.hpp"
#include "core/timeout_detector.hpp"
#include "faults/injector.hpp"
#include "trace/inspector.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

using workloads::BenchmarkProfile;
using workloads::CommPattern;

/// A mini solver that also writes output (so the IO-Watchdog has a pulse
/// to monitor), long enough to outlive a 40 s fault trigger.
std::shared_ptr<const BenchmarkProfile> writing_solver() {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->name = "MINI";
  profile->iterations = 4000;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(200);
  profile->output_every = 5;
  profile->phases = {
      {"mini_sweep", sim::from_millis(35), 0.20, CommPattern::kHaloBlocking,
       256 * 1024},
      {"mini_norm", sim::from_millis(6), 0.15, CommPattern::kAllreduce, 64},
  };
  return profile;
}

simmpi::WorldConfig world_config(int nranks, std::uint64_t seed) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

DetectorConfig parastack_config() {
  DetectorConfig config;
  config.monitored_count = 6;
  config.seed = 4242;
  return config;
}

faults::FaultPlan hang_plan(simmpi::Rank victim, sim::Time trigger) {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = victim;
  plan.trigger_time = trigger;
  return plan;
}

/// One hanging job watched by all three detector kinds at once.
struct BankRig {
  BankRig(std::uint64_t seed, faults::FaultPlan plan)
      : injector(plan),
        world(world_config(16, seed),
              injector.wrap(workloads::make_factory(writing_solver()))),
        inspector(world) {
    bank.add(std::make_unique<HangDetector>(world, inspector,
                                            parastack_config()));
    TimeoutDetector::Config timeout;
    timeout.monitored_count = 6;
    bank.add(std::make_unique<TimeoutDetector>(world, inspector, timeout));
    IoWatchdog::Config watchdog;
    watchdog.timeout = 60 * sim::kSecond;
    watchdog.poll_interval = 5 * sim::kSecond;
    bank.add(std::make_unique<IoWatchdog>(world, watchdog));
    injector.arm(world);
  }

  bool all_detected() const {
    for (std::size_t i = 0; i < bank.size(); ++i) {
      if (!bank.at(i).detected()) return false;
    }
    return true;
  }

  void run(sim::Time deadline) {
    world.start();
    bank.start_all();
    auto& engine = world.engine();
    while (!world.all_finished() && !all_detected() &&
           engine.now() <= deadline) {
      if (!engine.step()) break;
    }
    bank.stop_all();
  }

  faults::FaultInjector injector;
  simmpi::World world;
  trace::StackInspector inspector;
  DetectorBank bank;
};

TEST(DetectorBank, PreservesAttachmentOrderAndKinds) {
  BankRig rig(91, faults::FaultPlan{});
  ASSERT_EQ(rig.bank.size(), 3u);
  EXPECT_FALSE(rig.bank.empty());
  EXPECT_EQ(rig.bank.at(0).kind(), DetectorKind::kParastack);
  EXPECT_EQ(rig.bank.at(1).kind(), DetectorKind::kTimeout);
  EXPECT_EQ(rig.bank.at(2).kind(), DetectorKind::kIoWatchdog);
}

TEST(DetectorBank, DefaultLabelsAreTheKindNames) {
  BankRig rig(91, faults::FaultPlan{});
  EXPECT_EQ(rig.bank.at(0).label(), "parastack");
  EXPECT_EQ(rig.bank.at(1).label(), "timeout");
  EXPECT_EQ(rig.bank.at(2).label(), "io-watchdog");
}

TEST(DetectorBank, UniquifiesCollidingLabels) {
  simmpi::World world(world_config(16, 92),
                      workloads::make_factory(writing_solver()));
  trace::StackInspector inspector(world);
  DetectorBank bank;
  bank.add(std::make_unique<HangDetector>(world, inspector,
                                          parastack_config()));
  bank.add(std::make_unique<HangDetector>(world, inspector,
                                          parastack_config()));
  bank.add(std::make_unique<HangDetector>(world, inspector,
                                          parastack_config()));
  EXPECT_EQ(bank.at(0).label(), "parastack");
  EXPECT_EQ(bank.at(1).label(), "parastack#2");
  EXPECT_EQ(bank.at(2).label(), "parastack#3");
}

TEST(DetectorBank, FindReturnsFirstOfAKind) {
  BankRig rig(91, faults::FaultPlan{});
  EXPECT_EQ(rig.bank.find(DetectorKind::kParastack), &rig.bank.at(0));
  EXPECT_EQ(rig.bank.find(DetectorKind::kTimeout), &rig.bank.at(1));
  EXPECT_EQ(rig.bank.find(DetectorKind::kIoWatchdog), &rig.bank.at(2));
  const DetectorBank empty;
  EXPECT_EQ(empty.find(DetectorKind::kParastack), nullptr);
}

TEST(DetectorBank, ThreeKindsJudgeTheSameHangingTrial) {
  BankRig rig(93, hang_plan(9, 40 * sim::kSecond));
  rig.run(10 * sim::kMinute);
  ASSERT_TRUE(rig.injector.record().activated());
  const sim::Time fault_at = rig.injector.record().activated_at;
  for (std::size_t i = 0; i < rig.bank.size(); ++i) {
    const Detector& detector = rig.bank.at(i);
    ASSERT_TRUE(detector.detected())
        << detector.label() << " missed the hang";
    const Detection& first = detector.detections().front();
    EXPECT_EQ(first.kind, detector.kind());
    EXPECT_GT(first.detected_at, fault_at)
        << detector.label() << " fired before the fault";
  }
  // The watchdog's verdict carries its silence evidence; at a 60 s timeout
  // it is the slowest of the three.
  const Detection& watchdog =
      rig.bank.find(DetectorKind::kIoWatchdog)->detections().front();
  EXPECT_GE(watchdog.silence, 60 * sim::kSecond);
  EXPECT_GE(watchdog.detected_at,
            rig.bank.find(DetectorKind::kParastack)
                ->detections().front().detected_at);
}

TEST(DetectorBank, OnDetectionHookFiresPerVerdict) {
  BankRig rig(93, hang_plan(9, 40 * sim::kSecond));
  int primary_verdicts = 0;
  sim::Time first_kill = 0;
  rig.bank.at(0).on_detection = [&](const Detection& detection) {
    if (primary_verdicts++ == 0) first_kill = detection.detected_at;
  };
  rig.run(10 * sim::kMinute);
  ASSERT_GT(primary_verdicts, 0);
  EXPECT_EQ(first_kill,
            rig.bank.at(0).detections().front().detected_at);
}

TEST(DetectorBank, StopAllSilencesPendingCallbacks) {
  BankRig rig(94, faults::FaultPlan{});
  rig.world.start();
  rig.bank.start_all();
  rig.world.engine().run_until(5 * sim::kSecond);
  rig.bank.stop_all();
  const auto counts_after_stop = rig.bank.at(0).detections().size();
  // Drain everything still queued: stopped detectors must not act on it.
  rig.world.run_until_done(10 * sim::kMinute);
  EXPECT_EQ(rig.bank.at(0).detections().size(), counts_after_stop);
  EXPECT_FALSE(rig.bank.at(1).detected());
  EXPECT_FALSE(rig.bank.at(2).detected());
}

}  // namespace
}  // namespace parastack::core
