// Per-level gather deadline on the monitor tree: a level that would take
// longer than the deadline forwards what it has and caps its latency
// contribution. The cap is latency-only (partial counts still aggregate in
// full, so S_crout is untouched) and a no-op in star mode or when unset.

#include <gtest/gtest.h>

#include <sstream>

#include "core/monitor_network.hpp"
#include "harness/runner.hpp"
#include "obs/journal.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

std::shared_ptr<const workloads::BenchmarkProfile> small_profile() {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 4000;
  profile->reference_ranks = 192;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"w", sim::from_millis(25), 0.12,
       workloads::CommPattern::kHaloBlocking, 64 * 1024},
      {"n", sim::from_millis(5), 0.1, workloads::CommPattern::kAllreduce, 16},
  };
  return profile;
}

simmpi::WorldConfig config192(std::uint64_t seed = 21) {
  simmpi::WorldConfig config;
  config.nranks = 192;
  config.platform = sim::Platform::tianhe2();  // 8 nodes -> 8 monitors
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

std::vector<simmpi::Rank> all_ranks() {
  std::vector<simmpi::Rank> set(192);
  for (int r = 0; r < 192; ++r) set[r] = r;
  return set;
}

TopologyConfig deadline_tree(sim::Time deadline) {
  TopologyConfig config;
  config.fanout = 2;  // 8 monitors -> 3 gather levels
  config.level_deadline = deadline;
  return config;
}

TEST(TreeDeadline, TightDeadlineCapsLatencyButNotTheCount) {
  simmpi::World uncapped_world(config192(),
                              workloads::make_factory(small_profile()));
  trace::StackInspector uncapped_inspector(uncapped_world);
  MonitorNetwork uncapped(uncapped_world, uncapped_inspector);
  uncapped.set_topology(deadline_tree(0));

  simmpi::World capped_world(config192(),
                             workloads::make_factory(small_profile()));
  trace::StackInspector capped_inspector(capped_world);
  MonitorNetwork capped(capped_world, capped_inspector);
  capped.set_topology(deadline_tree(sim::from_micros(1)));

  const auto set = all_ranks();
  const auto slow = uncapped.measure(set);
  const auto fast = capped.measure(set);
  // Identical worlds, identical observation — only the latency differs.
  EXPECT_DOUBLE_EQ(slow.scrout, fast.scrout);
  EXPECT_EQ(slow.ranks_traced, fast.ranks_traced);
  EXPECT_LT(fast.aggregation_latency, slow.aggregation_latency);
  EXPECT_EQ(uncapped.level_deadline_hits(), 0u);
  EXPECT_GT(capped.level_deadline_hits(), 0u);
}

TEST(TreeDeadline, GenerousDeadlineNeverFires) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  MonitorNetwork network(world, inspector);
  network.set_topology(deadline_tree(10 * sim::kSecond));
  (void)network.measure(all_ranks());
  EXPECT_EQ(network.level_deadline_hits(), 0u);
}

// --- End-to-end byte-identity guards through run_one() ----------------------

harness::RunConfig hang_config(std::uint64_t seed) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 96;
  config.platform = sim::Platform::tianhe2();  // 4 nodes
  config.seed = seed;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  config.fault_trigger_lo = 40 * sim::kSecond;
  config.fault_trigger_hi = 40 * sim::kSecond;
  return config;
}

std::string journal_of(harness::RunConfig config) {
  std::ostringstream out;
  obs::JsonlJournal journal(out);
  config.telemetry = &journal;
  (void)harness::run_one(config);
  return out.str();
}

TEST(TreeDeadline, StarModeIgnoresTheDeadlineByteForByte) {
  // A deadline without a tree is inert configuration: the star run's
  // journal must not move by a single byte.
  harness::RunConfig star = hang_config(5);
  harness::RunConfig star_with_deadline = hang_config(5);
  star_with_deadline.monitor_tree.level_deadline = sim::from_micros(1);
  EXPECT_EQ(journal_of(star), journal_of(star_with_deadline));
}

TEST(TreeDeadline, UnsetDeadlineMatchesGenerousDeadline) {
  // The deadline only caps; a bound no level ever reaches is a no-op.
  harness::RunConfig plain = hang_config(9);
  plain.monitor_tree.fanout = 2;
  harness::RunConfig generous = hang_config(9);
  generous.monitor_tree.fanout = 2;
  generous.monitor_tree.level_deadline = 10 * sim::kSecond;
  EXPECT_EQ(journal_of(plain), journal_of(generous));
}

TEST(TreeDeadline, TightDeadlineStillDetectsTheHang) {
  // Capped gathers shift tool latency, never the observation stream: the
  // detector still catches the hang.
  harness::RunConfig config = hang_config(9);
  config.monitor_tree.fanout = 2;
  config.monitor_tree.level_deadline = sim::from_micros(1);
  const auto result = harness::run_one(config);
  ASSERT_FALSE(result.hangs().empty());
  EXPECT_FALSE(result.completed);
}

}  // namespace
}  // namespace parastack::core
