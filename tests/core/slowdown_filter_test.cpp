#include "core/slowdown_filter.hpp"

#include <gtest/gtest.h>

namespace parastack::core {
namespace {

trace::StackSnapshot snapshot(simmpi::Rank rank,
                              std::vector<std::string> frames) {
  trace::StackSnapshot snap;
  snap.rank = rank;
  snap.frames = std::move(frames);
  snap.innermost_mpi.clear();
  for (auto it = snap.frames.rbegin(); it != snap.frames.rend(); ++it) {
    if (simmpi::frame_is_mpi(*it)) {
      snap.innermost_mpi = *it;
      break;
    }
  }
  snap.in_mpi = !snap.innermost_mpi.empty();
  return snap;
}

TEST(SlowdownFilter, StaticStacksAreAHang) {
  const std::vector<trace::StackSnapshot> round = {
      snapshot(0, {"main", "solver", "MPI_Allreduce"}),
      snapshot(1, {"main", "solver", "stuck_user_loop"}),
      snapshot(2, {"main", "solver", "MPI_Allreduce"}),
  };
  EXPECT_FALSE(is_transient_slowdown(round, round));
}

TEST(SlowdownFilter, DifferentMpiFunctionsMeanSlowdown) {
  // Condition (1): a process passed through different MPI functions.
  const std::vector<trace::StackSnapshot> round1 = {
      snapshot(0, {"main", "MPI_Allreduce"}),
  };
  const std::vector<trace::StackSnapshot> round2 = {
      snapshot(0, {"main", "MPI_Sendrecv"}),
  };
  EXPECT_TRUE(is_transient_slowdown(round1, round2));
}

TEST(SlowdownFilter, SteppingIntoNonTestMpiMeansSlowdown) {
  // Condition (2): OUT -> IN(non-test) crossing.
  const std::vector<trace::StackSnapshot> round1 = {
      snapshot(0, {"main", "user_compute"}),
  };
  const std::vector<trace::StackSnapshot> round2 = {
      snapshot(0, {"main", "MPI_Recv"}),
  };
  EXPECT_TRUE(is_transient_slowdown(round1, round2));
  EXPECT_TRUE(is_transient_slowdown(round2, round1));  // and out of
}

TEST(SlowdownFilter, BusyWaitFlippingIsNotSlowdownEvidence) {
  // A process alternating between its busy loop body and MPI_Test is
  // treated as staying inside MPI (§3.3's exception list).
  const std::vector<trace::StackSnapshot> round1 = {
      snapshot(0, {"main", "hpl_spread", "MPI_Test"}),
  };
  const std::vector<trace::StackSnapshot> round2 = {
      snapshot(0, {"main", "hpl_spread"}),
  };
  EXPECT_FALSE(is_transient_slowdown(round1, round2));
  EXPECT_FALSE(is_transient_slowdown(round2, round1));
}

TEST(SlowdownFilter, IprobeCountsAsTestFamily) {
  const std::vector<trace::StackSnapshot> round1 = {
      snapshot(0, {"main", "poll_loop", "MPI_Iprobe"}),
  };
  const std::vector<trace::StackSnapshot> round2 = {
      snapshot(0, {"main", "poll_loop"}),
  };
  EXPECT_FALSE(is_transient_slowdown(round1, round2));
}

TEST(SlowdownFilter, TestToDifferentTestFunctionIsCondition1) {
  // MPI_Test -> MPI_Testall are different MPI functions: still movement.
  const std::vector<trace::StackSnapshot> round1 = {
      snapshot(0, {"main", "loop", "MPI_Test"}),
  };
  const std::vector<trace::StackSnapshot> round2 = {
      snapshot(0, {"main", "loop", "MPI_Testall"}),
  };
  EXPECT_TRUE(is_transient_slowdown(round1, round2));
}

TEST(SlowdownFilter, OneMovingProcessAmongManyStaticSuffices) {
  std::vector<trace::StackSnapshot> round1;
  std::vector<trace::StackSnapshot> round2;
  for (simmpi::Rank r = 0; r < 20; ++r) {
    round1.push_back(snapshot(r, {"main", "MPI_Allreduce"}));
    round2.push_back(snapshot(r, {"main", "MPI_Allreduce"}));
  }
  round2[13] = snapshot(13, {"main", "user_compute"});
  EXPECT_TRUE(is_transient_slowdown(round1, round2));
}

TEST(SlowdownFilterDeath, MisalignedRoundsRejected) {
  const std::vector<trace::StackSnapshot> one = {snapshot(0, {"main"})};
  const std::vector<trace::StackSnapshot> two = {snapshot(0, {"main"}),
                                                 snapshot(1, {"main"})};
  EXPECT_DEATH((void)is_transient_slowdown(one, two), "matched rounds");
  const std::vector<trace::StackSnapshot> wrong_rank = {
      snapshot(5, {"main"})};
  EXPECT_DEATH((void)is_transient_slowdown(one, wrong_rank), "align");
}

}  // namespace
}  // namespace parastack::core
