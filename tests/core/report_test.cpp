#include "core/report.hpp"

#include <gtest/gtest.h>

namespace parastack::core {
namespace {

TEST(HangReport, ToStringComputation) {
  HangReport report;
  report.detected_at = 42 * sim::kSecond + 500 * sim::kMillisecond;
  report.kind = HangKind::kComputationError;
  report.faulty_ranks = {100};
  report.suspicion_streak = 5;
  report.required_streak = 5;
  report.q = 0.123;
  report.interval = sim::from_millis(400);
  const auto text = report.to_string();
  EXPECT_NE(text.find("t=42.50s"), std::string::npos);
  EXPECT_NE(text.find("computation error"), std::string::npos);
  EXPECT_NE(text.find("streak 5/5"), std::string::npos);
  EXPECT_NE(text.find("q=0.123"), std::string::npos);
  EXPECT_NE(text.find("I=400ms"), std::string::npos);
  EXPECT_NE(text.find("faulty ranks: 100"), std::string::npos);
}

TEST(HangReport, ToStringCommunicationOmitsRanks) {
  HangReport report;
  report.kind = HangKind::kCommunicationError;
  const auto text = report.to_string();
  EXPECT_NE(text.find("communication error"), std::string::npos);
  EXPECT_EQ(text.find("faulty ranks"), std::string::npos);
}

TEST(HangReport, MultipleFaultyRanksListed) {
  HangReport report;
  report.kind = HangKind::kComputationError;
  report.faulty_ranks = {3, 17, 42};
  const auto text = report.to_string();
  EXPECT_NE(text.find("3 17 42"), std::string::npos);
}

TEST(SlowdownReport, ToStringCarriesRoundsAndEvidence) {
  SlowdownReport report;
  report.detected_at = 90 * sim::kSecond;
  report.filter_rounds = 3;
  report.evidence = "rank 5: MPI_Allreduce -> MPI_Recv";
  const auto text = report.to_string();
  EXPECT_NE(text.find("t=90.00s"), std::string::npos);
  EXPECT_NE(text.find("3 filter rounds"), std::string::npos);
  EXPECT_NE(text.find("rank 5: MPI_Allreduce -> MPI_Recv"),
            std::string::npos);
}

TEST(SlowdownReport, ToStringWithoutEvidenceStaysClean) {
  SlowdownReport report;
  report.detected_at = sim::kSecond / 2;
  report.filter_rounds = 2;
  const auto text = report.to_string();
  EXPECT_NE(text.find("t=0.50s"), std::string::npos);
  EXPECT_EQ(text.find(':'), std::string::npos)
      << "no evidence separator expected: " << text;
}

}  // namespace
}  // namespace parastack::core
