// Unit tests for the extracted detection-pipeline stages (core/pipeline.hpp).
// Each stage is exercised in isolation — no HangDetector orchestration —
// which is exactly the property the refactor was meant to buy.

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "simmpi/stack.hpp"
#include "workloads/synthetic.hpp"

namespace parastack::core {
namespace {

using workloads::BenchmarkProfile;
using workloads::CommPattern;

std::shared_ptr<const BenchmarkProfile> mini_solver() {
  auto profile = std::make_shared<BenchmarkProfile>();
  profile->name = "MINI";
  profile->iterations = 400;
  profile->reference_ranks = 16;
  profile->setup_time = sim::from_millis(200);
  profile->phases = {
      {"mini_sweep", sim::from_millis(35), 0.20, CommPattern::kHaloBlocking,
       256 * 1024},
      {"mini_norm", sim::from_millis(6), 0.15, CommPattern::kAllreduce, 64},
  };
  return profile;
}

simmpi::WorldConfig world_config(int nranks, std::uint64_t seed) {
  simmpi::WorldConfig config;
  config.nranks = nranks;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

/// World + inspector + RNG, enough to host a ScroutSampler.
struct SamplerRig {
  SamplerRig(int nranks, ScroutSampler::Config config,
             std::uint64_t seed = 4242)
      : world(world_config(nranks, 11), workloads::make_factory(mini_solver())),
        inspector(world),
        rng(seed),
        sampler(world, inspector, config, rng) {}

  simmpi::World world;
  trace::StackInspector inspector;
  util::Rng rng;
  ScroutSampler sampler;
};

trace::StackSnapshot snap(simmpi::Rank rank, std::vector<std::string> frames) {
  trace::StackSnapshot snapshot;
  snapshot.rank = rank;
  snapshot.frames = std::move(frames);
  for (auto it = snapshot.frames.rbegin(); it != snapshot.frames.rend();
       ++it) {
    if (simmpi::frame_is_mpi(*it)) {
      snapshot.innermost_mpi = *it;
      break;
    }
  }
  snapshot.in_mpi = !snapshot.innermost_mpi.empty();
  return snapshot;
}

// --- ScroutSampler ---------------------------------------------------------

TEST(ScroutSampler, MonitorSetsAreDisjointAndSized) {
  SamplerRig rig(16, {.monitored_count = 6});
  const auto& a = rig.sampler.monitor_set(0);
  const auto& b = rig.sampler.monitor_set(1);
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(b.size(), 6u);
  std::set<simmpi::Rank> all(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  EXPECT_EQ(all.size(), 12u);  // no overlap
  for (const simmpi::Rank r : all) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 16);
  }
}

TEST(ScroutSampler, SmallJobSplitsWhatIsAvailable) {
  // nranks < 2C: each set gets nranks/2, still disjoint.
  SamplerRig rig(4, {.monitored_count = 10});
  ASSERT_EQ(rig.sampler.monitor_set(0).size(), 2u);
  ASSERT_EQ(rig.sampler.monitor_set(1).size(), 2u);
  std::set<simmpi::Rank> all;
  for (int set = 0; set < 2; ++set) {
    for (const simmpi::Rank r : rig.sampler.monitor_set(set)) all.insert(r);
  }
  EXPECT_EQ(all.size(), 4u);
}

TEST(ScroutSampler, NextDelaySpansHalfToThreeHalvesOfInterval) {
  SamplerRig rig(16, {.monitored_count = 6});
  const sim::Time interval = sim::from_millis(400);
  double mean_ms = 0.0;
  constexpr int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    const sim::Time delay = rig.sampler.next_delay(interval);
    ASSERT_GE(delay, interval / 2);
    ASSERT_LE(delay, interval * 3 / 2);
    mean_ms += sim::to_millis(delay);
  }
  mean_ms /= kDraws;
  // r_step = rand(I) + I/2 has mean I (§3.1).
  EXPECT_NEAR(mean_ms, sim::to_millis(interval), 10.0);
}

TEST(ScroutSampler, DwellSwitchAlternatesActiveSet) {
  SamplerRig rig(16, {.monitored_count = 6});
  EXPECT_EQ(rig.sampler.active_set(), 0);
  EXPECT_FALSE(rig.sampler.count_observation(3));
  EXPECT_FALSE(rig.sampler.count_observation(3));
  EXPECT_TRUE(rig.sampler.count_observation(3));  // dwell reached: switch
  EXPECT_EQ(rig.sampler.active_set(), 1);
  EXPECT_FALSE(rig.sampler.count_observation(3));
  EXPECT_EQ(rig.sampler.observations(), 4u);
}

TEST(ScroutSampler, AlternationCanBeDisabled) {
  SamplerRig rig(16,
                 {.monitored_count = 6, .enable_set_alternation = false});
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rig.sampler.count_observation(3));
  }
  EXPECT_EQ(rig.sampler.active_set(), 0);
  EXPECT_EQ(rig.sampler.observations(), 20u);
}

TEST(ScroutSampler, MeasureReturnsAFractionOfTheSet) {
  SamplerRig rig(16, {.monitored_count = 6});
  const double scrout = rig.sampler.measure();
  EXPECT_GE(scrout, 0.0);
  EXPECT_LE(scrout, 1.0);
}

// --- IntervalTuner ---------------------------------------------------------

TEST(IntervalTuner, StartsAtInitialIntervalAndResets) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400)});
  EXPECT_EQ(tuner.interval(), sim::from_millis(400));
  EXPECT_FALSE(tuner.randomness_confirmed());
  EXPECT_EQ(tuner.doublings(), 0u);
  tuner.restore({.interval = sim::from_millis(1600),
                 .randomness_confirmed = true,
                 .doublings = 2});
  EXPECT_EQ(tuner.interval(), sim::from_millis(1600));
  tuner.reset();
  EXPECT_EQ(tuner.interval(), sim::from_millis(400));
  EXPECT_FALSE(tuner.randomness_confirmed());
  EXPECT_EQ(tuner.doublings(), 0u);
}

TEST(IntervalTuner, NonRandomSeriesDoublesIntervalAndThinsModel) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400),
                       .runs_test_batch = 16});
  ScroutModel model;
  // A monotone ramp: the runs test sees two runs around the median and
  // rejects randomness on the first batch.
  for (int i = 0; i < 16; ++i) {
    model.add_sample(static_cast<double>(i) / 16.0);
    tuner.on_model_sample(model, nullptr, sim::from_millis(i), "test");
  }
  EXPECT_EQ(tuner.interval(), sim::from_millis(800));
  EXPECT_EQ(tuner.doublings(), 1u);
  EXPECT_FALSE(tuner.randomness_confirmed());
  // thin_half: history now approximates samples taken at the doubled I.
  EXPECT_EQ(model.size(), 8u);
}

TEST(IntervalTuner, RandomSeriesConfirmsWithoutDoubling) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400),
                       .runs_test_batch = 16});
  ScroutModel model;
  util::Rng rng(17);
  for (int i = 0; i < 16; ++i) {
    model.add_sample(rng.uniform());
    tuner.on_model_sample(model, nullptr, sim::from_millis(i), "test");
  }
  EXPECT_TRUE(tuner.randomness_confirmed());
  EXPECT_EQ(tuner.interval(), sim::from_millis(400));
  EXPECT_EQ(model.size(), 16u);  // no thinning happened
}

TEST(IntervalTuner, ConfirmedTunerIgnoresFurtherSamples) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400),
                       .runs_test_batch = 4});
  tuner.restore({.interval = sim::from_millis(400),
                 .randomness_confirmed = true});
  ScroutModel model;
  for (int i = 0; i < 32; ++i) {
    model.add_sample(static_cast<double>(i));  // wildly non-random
    tuner.on_model_sample(model, nullptr, 0, "test");
  }
  EXPECT_EQ(tuner.interval(), sim::from_millis(400));
  EXPECT_EQ(model.size(), 32u);
}

TEST(IntervalTuner, DisabledTunerNeverDoublesOrConfirms) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400),
                       .runs_test_batch = 4,
                       .enable = false});
  ScroutModel model;
  for (int i = 0; i < 32; ++i) {
    model.add_sample(static_cast<double>(i) / 32.0);
    tuner.on_model_sample(model, nullptr, 0, "test");
  }
  EXPECT_EQ(tuner.interval(), sim::from_millis(400));
  EXPECT_FALSE(tuner.randomness_confirmed());
  EXPECT_EQ(model.size(), 32u);
}

TEST(IntervalTuner, CapForcesConfirmationInsteadOfDisablingDetection) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400),
                       .max_interval = sim::from_millis(800),
                       .runs_test_batch = 16});
  ScroutModel model;
  auto feed_monotone_batch = [&] {
    for (int i = 0; i < 16; ++i) {
      model.add_sample(static_cast<double>(i) / 16.0);
      tuner.on_model_sample(model, nullptr, 0, "test");
    }
  };
  feed_monotone_batch();  // 400 -> 800
  EXPECT_EQ(tuner.interval(), sim::from_millis(800));
  EXPECT_FALSE(tuner.randomness_confirmed());
  feed_monotone_batch();  // would exceed the cap: give up and proceed
  EXPECT_EQ(tuner.interval(), sim::from_millis(800));
  EXPECT_TRUE(tuner.randomness_confirmed());
  EXPECT_EQ(tuner.doublings(), 1u);
}

TEST(IntervalTuner, StateRoundTripsThroughStashAndRestore) {
  IntervalTuner tuner({.initial_interval = sim::from_millis(400)});
  const IntervalTuner::State saved = {.interval = sim::from_millis(3200),
                                      .randomness_confirmed = true,
                                      .doublings = 3,
                                      .samples_since_runs_test = 7};
  tuner.restore(saved);
  const auto state = tuner.state();
  EXPECT_EQ(state.interval, saved.interval);
  EXPECT_EQ(state.randomness_confirmed, saved.randomness_confirmed);
  EXPECT_EQ(state.doublings, saved.doublings);
  EXPECT_EQ(state.samples_since_runs_test, saved.samples_since_runs_test);
}

// --- SuspicionJudge --------------------------------------------------------

/// A healthy model: ~10% mass near zero, the rest high. Ready with
/// threshold 0.0 and a small k (cf. model_test.cpp).
void fill_healthy(ScroutModel& model) {
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    model.add_sample(rng.uniform() < 0.10 ? 0.0 : 0.8 + 0.1 * (i % 3));
  }
}

TEST(SuspicionJudge, UnreadyModelNeverSuspects) {
  SuspicionJudge judge({.alpha = 0.001});
  const auto verdict = judge.judge(0.0, true);
  EXPECT_FALSE(verdict.decision.ready);
  EXPECT_FALSE(verdict.suspicious);
  EXPECT_EQ(judge.streak(), 0u);
}

TEST(SuspicionJudge, UnconfirmedRandomnessGatesDetection) {
  SuspicionJudge judge({.alpha = 0.001});
  fill_healthy(judge.model());
  const auto verdict = judge.judge(0.0, /*randomness_confirmed=*/false);
  EXPECT_TRUE(verdict.decision.ready);
  EXPECT_FALSE(verdict.suspicious);  // q^k only bounds iid sampling
  EXPECT_EQ(judge.streak(), 0u);
}

TEST(SuspicionJudge, StreakAdvancesToVerificationAtK) {
  SuspicionJudge judge({.alpha = 0.001});
  fill_healthy(judge.model());
  const std::size_t k = judge.decision().k;
  ASSERT_GE(k, 2u);
  for (std::size_t i = 1; i < k; ++i) {
    const auto verdict = judge.judge(0.0, true);
    EXPECT_TRUE(verdict.suspicious);
    EXPECT_FALSE(verdict.verify) << "verified early at streak " << i;
    EXPECT_EQ(judge.streak(), i);
  }
  const auto verdict = judge.judge(0.0, true);
  EXPECT_TRUE(verdict.suspicious);
  EXPECT_TRUE(verdict.verify);
  EXPECT_EQ(judge.streak(), k);
}

TEST(SuspicionJudge, HealthySampleEndsTheStreak) {
  SuspicionJudge judge({.alpha = 0.001});
  fill_healthy(judge.model());
  judge.judge(0.0, true);
  judge.judge(0.0, true);
  ASSERT_EQ(judge.streak(), 2u);
  const auto verdict = judge.judge(0.9, true);
  EXPECT_FALSE(verdict.suspicious);
  EXPECT_EQ(verdict.ended_streak, 2u);
  EXPECT_EQ(judge.streak(), 0u);
}

TEST(SuspicionJudge, ResetStreakReturnsItsLength) {
  SuspicionJudge judge({.alpha = 0.001});
  fill_healthy(judge.model());
  judge.judge(0.0, true);
  judge.judge(0.0, true);
  judge.judge(0.0, true);
  EXPECT_EQ(judge.reset_streak(), 3u);
  EXPECT_EQ(judge.streak(), 0u);
  EXPECT_EQ(judge.reset_streak(), 0u);
}

TEST(SuspicionJudge, ModelFreezesDuringLongStreaks) {
  SuspicionJudge judge({.alpha = 0.001, .model_freeze_streak = 3});
  fill_healthy(judge.model());
  EXPECT_FALSE(judge.model_frozen());
  judge.judge(0.0, true);
  judge.judge(0.0, true);
  EXPECT_FALSE(judge.model_frozen());
  judge.judge(0.0, true);
  EXPECT_TRUE(judge.model_frozen());  // streak >= model_freeze_streak
}

TEST(SuspicionJudge, EagerFreezeVariantFreezesFromFirstSuspicion) {
  SuspicionJudge judge({.alpha = 0.001,
                        .freeze_model_during_streak = true});
  fill_healthy(judge.model());
  EXPECT_FALSE(judge.model_frozen());
  judge.judge(0.0, true);
  EXPECT_TRUE(judge.model_frozen());
}

TEST(SuspicionJudge, PhaseSwitchStashesAndRestoresModelAndTuning) {
  SuspicionJudge judge({.alpha = 0.001});
  IntervalTuner tuner({.initial_interval = sim::from_millis(400)});
  fill_healthy(judge.model());
  const std::size_t phase0_size = judge.model().size();
  tuner.restore({.interval = sim::from_millis(1600),
                 .randomness_confirmed = true,
                 .doublings = 2});

  // Into a never-seen phase: fresh model, fresh tuning.
  EXPECT_FALSE(judge.switch_phase(1, tuner));
  EXPECT_EQ(judge.current_phase(), 1);
  EXPECT_EQ(judge.model().size(), 0u);
  EXPECT_EQ(tuner.interval(), sim::from_millis(400));
  EXPECT_FALSE(tuner.randomness_confirmed());

  judge.model().add_sample(0.5);

  // Back to phase 0: the stashed model and tuning come back verbatim.
  EXPECT_TRUE(judge.switch_phase(0, tuner));
  EXPECT_EQ(judge.current_phase(), 0);
  EXPECT_EQ(judge.model().size(), phase0_size);
  EXPECT_EQ(tuner.interval(), sim::from_millis(1600));
  EXPECT_TRUE(tuner.randomness_confirmed());
  EXPECT_EQ(tuner.doublings(), 2u);

  // And phase 1's single sample was stashed in turn.
  EXPECT_TRUE(judge.switch_phase(1, tuner));
  EXPECT_EQ(judge.model().size(), 1u);
}

TEST(SuspicionJudge, PhaseSwitchLeavesTheStreakToTheOrchestrator) {
  // switch_phase must not reset the streak itself: the orchestrator does,
  // with telemetry (PhaseChangeEvent.aborted_verification).
  SuspicionJudge judge({.alpha = 0.001});
  IntervalTuner tuner({.initial_interval = sim::from_millis(400)});
  fill_healthy(judge.model());
  judge.judge(0.0, true);
  judge.judge(0.0, true);
  ASSERT_EQ(judge.streak(), 2u);
  judge.switch_phase(1, tuner);
  EXPECT_EQ(judge.streak(), 2u);
}

// --- TransientFilter -------------------------------------------------------

std::vector<trace::StackSnapshot> static_round() {
  return {snap(0, {"main", "solver", "MPI_Allreduce"}),
          snap(1, {"main", "solver", "stuck_user_loop"}),
          snap(2, {"main", "solver", "MPI_Allreduce"})};
}

TEST(SuspicionJudge, BelowQuorumStreakNeedsTheSurcharge) {
  SuspicionJudge judge({.alpha = 0.001,
                        .coverage_quorum = 0.55,
                        .low_coverage_extra_streak = 2,
                        .degraded_mode_after = 100});
  fill_healthy(judge.model());
  const std::size_t k = judge.decision().k;
  // All-suspicious streak at below-quorum coverage: verification must wait
  // for k + 2 observations, not k.
  for (std::size_t i = 1; i <= k + 2; ++i) {
    const auto verdict = judge.judge(0.0, true, /*coverage=*/0.4);
    EXPECT_TRUE(verdict.suspicious);
    EXPECT_EQ(verdict.required, k + 2);
    EXPECT_EQ(verdict.verify, i >= k + 2) << "streak " << i;
  }
}

TEST(SuspicionJudge, AtQuorumCoverageNeedsNoSurcharge) {
  SuspicionJudge judge({.alpha = 0.001});
  fill_healthy(judge.model());
  const std::size_t k = judge.decision().k;
  for (std::size_t i = 1; i <= k; ++i) {
    const auto verdict = judge.judge(0.0, true, /*coverage=*/0.8);
    EXPECT_EQ(verdict.required, k);
    EXPECT_EQ(verdict.verify, i >= k);
  }
}

TEST(SuspicionJudge, ZeroCoverageSampleIsStreakNeutral) {
  SuspicionJudge judge({.alpha = 0.001});
  fill_healthy(judge.model());
  judge.judge(0.0, true);
  judge.judge(0.0, true);
  ASSERT_EQ(judge.streak(), 2u);
  // A blind sample carries no signal: the streak neither advances nor ends.
  const auto verdict = judge.judge(0.0, true, /*coverage=*/0.0);
  EXPECT_FALSE(verdict.suspicious);
  EXPECT_EQ(verdict.ended_streak, 0u);
  EXPECT_EQ(judge.streak(), 2u);
}

TEST(SuspicionJudge, DegradedModeEntersAfterConsecutiveLowAndExits) {
  SuspicionJudge judge({.alpha = 0.001,
                        .coverage_quorum = 0.55,
                        .degraded_mode_after = 3});
  fill_healthy(judge.model());
  EXPECT_FALSE(judge.degraded_mode());
  EXPECT_FALSE(judge.judge(0.9, true, 0.4).entered_degraded);
  EXPECT_FALSE(judge.judge(0.9, true, 0.4).entered_degraded);
  EXPECT_EQ(judge.consecutive_low_coverage(), 2u);
  const auto third = judge.judge(0.9, true, 0.4);
  EXPECT_TRUE(third.entered_degraded);
  EXPECT_TRUE(judge.degraded_mode());
  // Still degraded on the next low sample, but the transition fired once.
  EXPECT_FALSE(judge.judge(0.9, true, 0.4).entered_degraded);
  // First at-quorum sample recovers.
  const auto recovered = judge.judge(0.9, true, 1.0);
  EXPECT_TRUE(recovered.exited_degraded);
  EXPECT_FALSE(judge.degraded_mode());
  EXPECT_EQ(judge.consecutive_low_coverage(), 0u);
}

TEST(SuspicionJudge, AnInterveningHealthySampleClearsTheSurcharge) {
  SuspicionJudge judge({.alpha = 0.001,
                        .coverage_quorum = 0.55,
                        .low_coverage_extra_streak = 3,
                        .degraded_mode_after = 100});
  fill_healthy(judge.model());
  const std::size_t k = judge.decision().k;
  judge.judge(0.0, true, 0.4);  // below-quorum suspicion taints the streak
  EXPECT_EQ(judge.judge(0.0, true, 1.0).required, k + 3);
  judge.judge(0.9, true, 1.0);  // healthy sample resets streak + taint
  EXPECT_EQ(judge.judge(0.0, true, 1.0).required, k);
}

TEST(TransientFilter, MovementBetweenRoundsIsASlowdown) {
  TransientFilter filter({.rounds = 5});
  filter.begin(static_round());
  EXPECT_EQ(filter.rounds_done(), 1);
  // Rank 1 moved into a (non-test) MPI call: §3.3 condition (2).
  auto moved = static_round();
  moved[1] = snap(1, {"main", "solver", "MPI_Recv"});
  const auto check = filter.check(std::move(moved));
  ASSERT_EQ(check.outcome, TransientFilter::Outcome::kSlowdown);
  EXPECT_EQ(check.evidence.rank, 1);
}

TEST(TransientFilter, StaticRoundsRetryThenConfirmTheHang) {
  TransientFilter filter({.rounds = 3});
  filter.begin(static_round());
  const auto second = filter.check(static_round());
  EXPECT_EQ(second.outcome, TransientFilter::Outcome::kRetry);
  EXPECT_EQ(filter.rounds_done(), 2);
  const auto third = filter.check(static_round());
  EXPECT_EQ(third.outcome, TransientFilter::Outcome::kHangConfirmed);
  EXPECT_EQ(filter.rounds_done(), 3);
}

TEST(TransientFilter, RearmingRestartsTheCount) {
  TransientFilter filter({.rounds = 2});
  filter.begin(static_round());
  EXPECT_EQ(filter.check(static_round()).outcome,
            TransientFilter::Outcome::kHangConfirmed);
  filter.begin(static_round());  // a fresh verification
  EXPECT_EQ(filter.rounds_done(), 1);
  EXPECT_EQ(filter.check(static_round()).outcome,
            TransientFilter::Outcome::kHangConfirmed);
}

// --- FaultyIdentifier ------------------------------------------------------

std::vector<trace::StackSnapshot> sweep_with_victim(simmpi::Rank victim) {
  std::vector<trace::StackSnapshot> sweep;
  for (simmpi::Rank r = 0; r < 4; ++r) {
    sweep.push_back(r == victim
                        ? snap(r, {"main", "solver", "stuck_user_loop"})
                        : snap(r, {"main", "solver", "MPI_Allreduce"}));
  }
  return sweep;
}

TEST(FaultyIdentifier, CollectsConfiguredSweepCountThenIdentifies) {
  FaultyIdentifier identifier({.checks = 3, .gap = sim::from_millis(50)});
  EXPECT_EQ(identifier.gap(), sim::from_millis(50));
  EXPECT_FALSE(identifier.add_sweep(sweep_with_victim(2)));
  EXPECT_FALSE(identifier.add_sweep(sweep_with_victim(2)));
  EXPECT_EQ(identifier.rounds(), 2);
  EXPECT_TRUE(identifier.add_sweep(sweep_with_victim(2)));
  const auto faulty = identifier.identify();
  ASSERT_EQ(faulty.size(), 1u);
  EXPECT_EQ(faulty[0], 2);
}

TEST(FaultyIdentifier, ResetDropsCollectedSweeps) {
  FaultyIdentifier identifier({.checks = 2});
  identifier.add_sweep(sweep_with_victim(1));
  identifier.reset();
  EXPECT_EQ(identifier.rounds(), 0);
  EXPECT_FALSE(identifier.add_sweep(sweep_with_victim(3)));
  EXPECT_TRUE(identifier.add_sweep(sweep_with_victim(3)));
  const auto faulty = identifier.identify();
  ASSERT_EQ(faulty.size(), 1u);
  EXPECT_EQ(faulty[0], 3);
}

}  // namespace
}  // namespace parastack::core
