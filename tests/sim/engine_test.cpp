#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace parastack::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(engine.events_pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeFiresInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  engine.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(50, [&] {
    engine.schedule_after(25, [&] { fired_at = engine.now(); });
  });
  engine.run_until_idle();
  EXPECT_EQ(fired_at, 75);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(10, [&] { fired = true; });
  engine.cancel(id);
  engine.run_until_idle();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.events_fired(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine engine;
  engine.cancel(9999);  // must not crash
  EXPECT_EQ(engine.events_pending(), 0u);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenIdle) {
  Engine engine;
  engine.run_until(500);
  EXPECT_EQ(engine.now(), 500);
}

TEST(Engine, RunUntilDoesNotFireLaterEvents) {
  Engine engine;
  bool early = false;
  bool late = false;
  engine.schedule_at(10, [&] { early = true; });
  engine.schedule_at(100, [&] { late = true; });
  engine.run_until(50);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(engine.now(), 50);
  engine.run_until_idle();
  EXPECT_TRUE(late);
}

TEST(Engine, StopHaltsProcessing) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2, [&] { ++fired; });
  engine.run_until_idle();
  EXPECT_EQ(fired, 1);
  engine.resume();
  engine.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsCanScheduleChains) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(1, chain);
  };
  engine.schedule_at(0, chain);
  engine.run_until_idle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), 99);
  EXPECT_EQ(engine.events_fired(), 100u);
}

TEST(EngineDeath, RejectsPastScheduling) {
  Engine engine;
  engine.schedule_at(10, [] {});
  engine.run_until_idle();
  EXPECT_DEATH(engine.schedule_at(5, [] {}), "past");
}

TEST(Engine, CancelHeavyChurnKeepsHeapBounded) {
  // Detectors schedule-then-cancel constantly (set switches, verification
  // aborts). Tombstones must be compacted lazily, not accumulate for the
  // life of the run.
  Engine engine;
  bool live_fired = false;
  engine.schedule_at(1'000'000, [&] { live_fired = true; });
  std::size_t max_depth = 0;
  for (int i = 0; i < 100'000; ++i) {
    const Engine::EventId id = engine.schedule_at(500'000 + i, [] {});
    engine.cancel(id);
    max_depth = std::max(max_depth, engine.queue_depth());
  }
  EXPECT_EQ(engine.events_pending(), 1u);
  // Compaction triggers past ~64 tombstones; the heap never grows anywhere
  // near the 100k cancels issued.
  EXPECT_LE(max_depth, 200u);
  EXPECT_LE(engine.queue_depth(), 200u);
  engine.run_until_idle();
  EXPECT_TRUE(live_fired);
  EXPECT_EQ(engine.events_fired(), 1u);
}

TEST(Engine, CompactionPreservesFiringOrder) {
  Engine engine;
  std::vector<int> order;
  std::vector<Engine::EventId> doomed;
  for (int i = 0; i < 300; ++i) {
    engine.schedule_at(1000 + i, [&order, i] { order.push_back(i); });
    doomed.push_back(engine.schedule_at(500 + i, [] {}));
  }
  for (const Engine::EventId id : doomed) engine.cancel(id);  // forces compactions
  engine.run_until_idle();
  ASSERT_EQ(order.size(), 300u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(engine.events_fired(), 300u);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, DoubleCancelDoesNotCorruptAccounting) {
  Engine engine;
  const Engine::EventId id = engine.schedule_at(10, [] {});
  engine.cancel(id);
  engine.cancel(id);  // no-op: must not count a second tombstone
  bool fired = false;
  engine.schedule_at(20, [&] { fired = true; });
  EXPECT_EQ(engine.events_pending(), 1u);
  engine.run_until_idle();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, RunUntilSkipsTombstonesAtTheCutoff) {
  // A cancelled event sitting at the heap front with time <= t must not
  // stall run_until or leak into the next window.
  Engine engine;
  const Engine::EventId id = engine.schedule_at(5, [] {});
  bool later = false;
  engine.schedule_at(20, [&] { later = true; });
  engine.cancel(id);
  engine.run_until(10);
  EXPECT_EQ(engine.now(), 10);
  EXPECT_FALSE(later);
  engine.run_until(30);
  EXPECT_TRUE(later);
}

TEST(EngineDeath, ScheduleAfterRejectsOverflowingDelay) {
  // A kNever-sized timeout added to a nonzero clock wraps Time negative; it
  // must fail the dedicated overflow check, not surface as a confusing
  // "cannot schedule events in the past".
  Engine engine;
  engine.schedule_at(100, [] {});
  engine.run_until_idle();
  EXPECT_DEATH(
      engine.schedule_after(std::numeric_limits<Time>::max() - 50, [] {}),
      "overflow");
}

TEST(Engine, ScheduleAfterAcceptsMaxRepresentableDelay) {
  // The guard is exact: now + dt == Time max is still representable.
  Engine engine;
  engine.schedule_at(100, [] {});
  engine.run_until_idle();
  const Engine::EventId id = engine.schedule_after(
      std::numeric_limits<Time>::max() - engine.now(), [] {});
  EXPECT_EQ(engine.events_pending(), 1u);
  engine.cancel(id);
}

TEST(Engine, CancelOwnIdFromInsideFiringCallbackIsNoop) {
  // By the time a callback runs, its own id is retired; cancelling it from
  // inside must neither count a cancellation nor free the slot twice.
  Engine engine;
  Engine::EventId self = 0;
  int fired = 0;
  self = engine.schedule_at(10, [&] {
    ++fired;
    engine.cancel(self);
  });
  bool later = false;
  engine.schedule_at(20, [&] { later = true; });
  engine.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(later);
  EXPECT_EQ(engine.events_cancelled(), 0u);
  EXPECT_EQ(engine.events_fired(), 2u);
  EXPECT_EQ(engine.events_pending(), 0u);
}

TEST(Engine, CancelSiblingFromInsideFiringCallback) {
  // Cancelling a same-instant sibling mid-fire must stop it from running
  // even though it is already ordered behind us in the heap.
  Engine engine;
  bool victim_ran = false;
  Engine::EventId victim = 0;
  engine.schedule_at(10, [&] { engine.cancel(victim); });
  victim = engine.schedule_at(10, [&] { victim_ran = true; });
  engine.run_until_idle();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(engine.events_fired(), 1u);
  EXPECT_EQ(engine.events_cancelled(), 1u);
  EXPECT_EQ(engine.events_scheduled(),
            engine.events_fired() + engine.events_cancelled() +
                engine.events_pending());
}

TEST(Engine, ScheduleAtNowDuringCallbackFiresAfterSameInstantPeers) {
  // An event scheduled for now() from inside a callback gets a later
  // insertion sequence than every already-queued same-instant peer, so it
  // fires after them — FIFO among equals, even for reentrant scheduling.
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(10, [&] {
    order.push_back(0);
    engine.schedule_at(engine.now(), [&] { order.push_back(99); });
  });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(10, [&] { order.push_back(2); });
  engine.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 99}));
  EXPECT_EQ(engine.now(), 10);
}

TEST(Engine, CancelThenCompactThenFireKeepsLedgerExact) {
  // Interleave cancels (driving bulk compactions) with fires and verify the
  // full ledger after every phase: scheduled == fired + cancelled + pending,
  // and every tombstone is eventually dropped exactly once.
  Engine engine;
  int fired = 0;
  std::vector<Engine::EventId> doomed;
  for (int round = 0; round < 5; ++round) {
    const Time base = engine.now() + 10;
    for (int i = 0; i < 100; ++i) {
      engine.schedule_at(base + i, [&] { ++fired; });
      doomed.push_back(engine.schedule_at(base + i, [] {}));
    }
    // Cancel half now (compaction may trigger mid-loop), half after firing.
    for (std::size_t i = 0; i < doomed.size(); i += 2) engine.cancel(doomed[i]);
    engine.run_until(base + 99);
    for (const Engine::EventId id : doomed) engine.cancel(id);  // rest no-op: fired or cancelled
    doomed.clear();
    EXPECT_EQ(engine.events_scheduled(),
              engine.events_fired() + engine.events_cancelled() +
                  engine.events_pending());
  }
  EXPECT_EQ(fired, 500);
  EXPECT_EQ(engine.events_pending(), 0u);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, InsertionOrderFifoAtEqualTimestampsSurvivesRecycling) {
  // Slot recycling (free-list reuse) must not perturb same-instant FIFO:
  // after heavy churn the pool hands out low slot indices again, and the
  // heap must still order purely by (time, insertion seq).
  Engine engine;
  for (int i = 0; i < 1000; ++i) {
    engine.cancel(engine.schedule_at(5, [] {}));  // churn the free list
  }
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    engine.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  engine.run_until_idle();
  ASSERT_EQ(order.size(), 64u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(engine.events_scheduled(),
            engine.events_fired() + engine.events_cancelled() +
                engine.events_pending());
}

}  // namespace
}  // namespace parastack::sim
