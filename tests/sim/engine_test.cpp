#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace parastack::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(engine.events_pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeFiresInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  engine.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  Time fired_at = -1;
  engine.schedule_at(50, [&] {
    engine.schedule_after(25, [&] { fired_at = engine.now(); });
  });
  engine.run_until_idle();
  EXPECT_EQ(fired_at, 75);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(10, [&] { fired = true; });
  engine.cancel(id);
  engine.run_until_idle();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.events_fired(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine engine;
  engine.cancel(9999);  // must not crash
  EXPECT_EQ(engine.events_pending(), 0u);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenIdle) {
  Engine engine;
  engine.run_until(500);
  EXPECT_EQ(engine.now(), 500);
}

TEST(Engine, RunUntilDoesNotFireLaterEvents) {
  Engine engine;
  bool early = false;
  bool late = false;
  engine.schedule_at(10, [&] { early = true; });
  engine.schedule_at(100, [&] { late = true; });
  engine.run_until(50);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(engine.now(), 50);
  engine.run_until_idle();
  EXPECT_TRUE(late);
}

TEST(Engine, StopHaltsProcessing) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2, [&] { ++fired; });
  engine.run_until_idle();
  EXPECT_EQ(fired, 1);
  engine.resume();
  engine.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsCanScheduleChains) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(1, chain);
  };
  engine.schedule_at(0, chain);
  engine.run_until_idle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), 99);
  EXPECT_EQ(engine.events_fired(), 100u);
}

TEST(EngineDeath, RejectsPastScheduling) {
  Engine engine;
  engine.schedule_at(10, [] {});
  engine.run_until_idle();
  EXPECT_DEATH(engine.schedule_at(5, [] {}), "past");
}

}  // namespace
}  // namespace parastack::sim
