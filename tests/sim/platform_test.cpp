#include "sim/platform.hpp"

#include <gtest/gtest.h>

namespace parastack::sim {
namespace {

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_seconds(2.0), 2 * kSecond);
  EXPECT_EQ(from_micros(3.0), 3 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
}

TEST(Platform, PresetsMatchPaperTopology) {
  // Paper §7: Tardis 32 cores/node, Tianhe-2 24, Stampede 16.
  EXPECT_EQ(Platform::tardis().cores_per_node, 32);
  EXPECT_EQ(Platform::tianhe2().cores_per_node, 24);
  EXPECT_EQ(Platform::stampede().cores_per_node, 16);
}

TEST(Platform, RelativeSpeedOrdering) {
  // Tianhe-2 is the fastest testbed; Tardis the slowest (paper hardware).
  EXPECT_LT(Platform::tianhe2().compute_scale, Platform::stampede().compute_scale);
  EXPECT_LT(Platform::stampede().compute_scale, Platform::tardis().compute_scale);
}

TEST(Platform, NoiseOrdering) {
  // Stampede's higher utilization means more noise and more transient
  // slowdowns than Tianhe-2 (paper §3.3 / §7.1-I).
  EXPECT_GT(Platform::stampede().noise_cv, Platform::tianhe2().noise_cv);
  EXPECT_GT(Platform::stampede().slowdowns_per_node_hour,
            Platform::tianhe2().slowdowns_per_node_hour);
}

TEST(Platform, TransferTimeScalesWithBytes) {
  const Platform p = Platform::tianhe2();
  const Time small = p.transfer_time(1024);
  const Time big = p.transfer_time(1024 * 1024);
  EXPECT_GT(big, small);
  EXPECT_GE(small, p.network_latency);
  // 1 MiB at 14 GB/s is ~75 microseconds; sanity-check the scale.
  EXPECT_GT(big, from_micros(50));
  EXPECT_LT(big, from_millis(1));
}

TEST(Platform, TardisNetworkSlowerThanTianhe2) {
  const auto bytes = std::size_t{10} * 1024 * 1024;
  EXPECT_GT(Platform::tardis().transfer_time(bytes),
            Platform::tianhe2().transfer_time(bytes));
}

}  // namespace
}  // namespace parastack::sim
