#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "minijson.hpp"

namespace parastack::obs {
namespace {

std::string render(const ChromeTraceWriter& writer) {
  std::ostringstream out;
  writer.write(out);
  return out.str();
}

TEST(ChromeTrace, EmptyTraceIsAValidDocument) {
  ChromeTraceWriter writer;
  const auto text = render(writer);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
}

TEST(ChromeTrace, RunStartEmitsProcessMetadata) {
  ChromeTraceWriter writer;
  RunStartEvent start;
  start.bench = "LU";
  start.input = "C";
  start.nranks = 32;
  writer.on_run_start(start);
  const auto text = render(writer);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  EXPECT_NE(text.find("process_name"), std::string::npos);
  EXPECT_NE(text.find("LU(C) x 32"), std::string::npos);
  EXPECT_NE(text.find("detector"), std::string::npos);
  EXPECT_NE(text.find("monitor-network"), std::string::npos);
}

TEST(ChromeTrace, RankSpansBecomeCompleteEvents) {
  ChromeTraceWriter writer;
  EXPECT_TRUE(writer.wants_rank_spans());
  RankSpanEvent span;
  span.begin = 2000;  // ns -> 2 us
  span.end = 5000;
  span.rank = 3;
  span.kind = RankSpanEvent::Kind::kBlockingMpi;
  span.func = "MPI_Allreduce";
  writer.on_rank_span(span);
  const auto text = render(writer);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"MPI_Allreduce\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":3"), std::string::npos);
}

TEST(ChromeTrace, RanksBeyondTheCapAreSkipped) {
  ChromeTraceWriter::Options options;
  options.max_ranks = 4;
  ChromeTraceWriter writer(options);
  RankSpanEvent span;
  span.rank = 4;  // first rank past the cap
  span.end = 100;
  writer.on_rank_span(span);
  EXPECT_EQ(writer.event_count(), 0u);
  span.rank = 0;
  writer.on_rank_span(span);
  EXPECT_EQ(writer.event_count(), 1u);
}

TEST(ChromeTrace, ZeroRankCapDisablesSpanInterest) {
  ChromeTraceWriter::Options options;
  options.max_ranks = 0;
  ChromeTraceWriter writer(options);
  EXPECT_FALSE(writer.wants_rank_spans());
}

TEST(ChromeTrace, SamplesBecomeInstantsAndCounters) {
  ChromeTraceWriter writer;
  SampleEvent sample;
  sample.time = 1000000;
  sample.scrout = 0.5;
  sample.suspicious = true;
  sample.streak = 2;
  writer.on_sample(sample);
  const auto text = render(writer);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("sample (suspicious)"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("S_crout"), std::string::npos);
}

TEST(ChromeTrace, VerificationWindowRendersAsSpan) {
  ChromeTraceWriter writer;
  FilterEvent enter;
  enter.time = 1000000;  // 1 ms
  enter.stage = FilterEvent::Stage::kEnter;
  writer.on_filter(enter);
  FilterEvent confirm;
  confirm.time = 5000000;  // 5 ms
  confirm.stage = FilterEvent::Stage::kHangConfirmed;
  writer.on_filter(confirm);
  HangEvent hang;
  hang.time = 5000000;
  writer.on_hang(hang);
  const auto text = render(writer);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  EXPECT_NE(text.find("verify: hang"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":4000.000"), std::string::npos) << text;
  EXPECT_NE(text.find("HANG (communication)"), std::string::npos);
}

TEST(ChromeTrace, EscapesQuotesInNames) {
  ChromeTraceWriter writer;
  RankSpanEvent span;
  span.end = 10;
  span.func = "weird\"name";
  writer.on_rank_span(span);
  const auto text = render(writer);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
}

}  // namespace
}  // namespace parastack::obs
