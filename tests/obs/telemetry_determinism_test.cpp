// Golden-file property of the telemetry layer: with a fixed seed, a whole
// simulated run emits a byte-identical journal, metrics document, and
// chrome trace no matter how often it is repeated. This pins down both the
// simulator's determinism and the sinks' stable formatting (%.9g doubles,
// sorted metric keys) — the contract psim's --journal/--metrics users rely
// on for diffing runs.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/runner.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

#include "minijson.hpp"

namespace parastack {
namespace {

harness::RunConfig small_lu(std::uint64_t seed) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

struct Capture {
  std::string journal;
  std::string metrics;
  std::string trace;
  harness::RunResult result;
};

Capture capture_run(std::uint64_t seed, faults::FaultType fault) {
  std::ostringstream journal_out;
  obs::JsonlJournal journal(journal_out);
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics(registry);
  obs::ChromeTraceWriter trace;
  obs::MultiSink multi;
  multi.add(&journal);
  multi.add(&metrics);
  multi.add(&trace);

  auto config = small_lu(seed);
  config.fault = fault;
  config.telemetry = &multi;
  Capture capture;
  capture.result = harness::run_one(config);
  capture.journal = journal_out.str();
  std::ostringstream metrics_out;
  registry.write_json(metrics_out);
  capture.metrics = metrics_out.str();
  std::ostringstream trace_out;
  trace.write(trace_out);
  capture.trace = trace_out.str();
  return capture;
}

TEST(TelemetryDeterminism, CleanRunIsByteIdenticalAcrossReruns) {
  const auto a = capture_run(7, faults::FaultType::kNone);
  const auto b = capture_run(7, faults::FaultType::kNone);
  EXPECT_FALSE(a.journal.empty());
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(TelemetryDeterminism, FaultyRunIsByteIdenticalAcrossReruns) {
  const auto a = capture_run(11, faults::FaultType::kComputeHang);
  const auto b = capture_run(11, faults::FaultType::kComputeHang);
  EXPECT_TRUE(a.result.parastack_detected());
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(TelemetryDeterminism, DifferentSeedsDiverge) {
  const auto a = capture_run(7, faults::FaultType::kNone);
  const auto b = capture_run(8, faults::FaultType::kNone);
  EXPECT_NE(a.journal, b.journal);
}

TEST(TelemetryDeterminism, JournalLinesAndDocumentsAreValidJson) {
  const auto capture = capture_run(11, faults::FaultType::kComputeHang);
  std::istringstream in(capture.journal);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    ASSERT_TRUE(testjson::is_valid_json(line)) << line;
  }
  EXPECT_GT(lines, 10u);
  EXPECT_TRUE(testjson::is_valid_json(capture.metrics));
  EXPECT_TRUE(testjson::is_valid_json(capture.trace));
}

TEST(TelemetryDeterminism, JournalTellsTheDetectionStory) {
  const auto capture = capture_run(11, faults::FaultType::kComputeHang);
  EXPECT_NE(capture.journal.find("\"ev\":\"run_start\""), std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"sample\""), std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"monitor_sample\""),
            std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"fault\""), std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"streak\""), std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"sweep\""), std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"hang\""), std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"run_end\""), std::string::npos);
  // The journal ends with the run_end line.
  const auto last_line_start =
      capture.journal.rfind("\n{", capture.journal.size() - 2);
  EXPECT_NE(capture.journal.find("\"ev\":\"run_end\"", last_line_start),
            std::string::npos);
}

TEST(TelemetryDeterminism, MetricsAgreeWithTheRunResult) {
  const auto capture = capture_run(11, faults::FaultType::kComputeHang);
  std::ostringstream expected;
  expected << "\"detector.hangs\":" << capture.result.hangs().size();
  EXPECT_NE(capture.metrics.find(expected.str()), std::string::npos)
      << capture.metrics;
  std::ostringstream traces;
  traces << "\"trace.traces\":" << capture.result.traces;
  EXPECT_NE(capture.metrics.find(traces.str()), std::string::npos);
}

// --- Tool-fault vocabulary (robustness extension) --------------------------

Capture capture_tool_fault_run(std::uint64_t seed) {
  std::ostringstream journal_out;
  obs::JsonlJournal journal(journal_out);
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics(registry);
  obs::MultiSink multi;
  multi.add(&journal);
  multi.add(&metrics);

  auto config = small_lu(seed);
  config.fault = faults::FaultType::kComputeHang;
  config.tool_faults.loss_probability = 0.3;
  config.tool_faults.monitor_crashes.push_back(
      {.monitor = -1, .at = 30 * sim::kSecond});
  // Before the hang verdict (~60 s at this seed) — sampling pauses during
  // verification sweeps, so a later crash would never be applied.
  config.tool_faults.lead_crash_at = 45 * sim::kSecond;
  config.telemetry = &multi;
  Capture capture;
  capture.result = harness::run_one(config);
  capture.journal = journal_out.str();
  std::ostringstream metrics_out;
  registry.write_json(metrics_out);
  capture.metrics = metrics_out.str();
  return capture;
}

TEST(TelemetryDeterminism, ToolFaultRunIsByteIdenticalAcrossReruns) {
  const auto a = capture_tool_fault_run(11);
  const auto b = capture_tool_fault_run(11);
  EXPECT_FALSE(a.journal.empty());
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(TelemetryDeterminism, ToolFaultJournalPinsTheNewVocabulary) {
  const auto capture = capture_tool_fault_run(11);
  EXPECT_NE(capture.journal.find("\"ev\":\"monitor_crash\""),
            std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"lead_failover\""),
            std::string::npos);
  EXPECT_NE(capture.journal.find("\"ev\":\"sample_timeout\""),
            std::string::npos);
  EXPECT_NE(capture.journal.find("\"coverage\""), std::string::npos);
  EXPECT_GT(capture.result.monitor_crashes, 0u);
  EXPECT_GT(capture.result.lead_failovers, 0u);
  // Every line is still valid JSON with the new fields in place.
  std::istringstream in(capture.journal);
  for (std::string line; std::getline(in, line);) {
    ASSERT_TRUE(testjson::is_valid_json(line)) << line;
  }
}

TEST(TelemetryDeterminism, FaultsOffJournalOmitsToolFaultVocabulary) {
  // Zero-cost-when-off: without a ToolFaultPlan, no tool-fault key may
  // appear anywhere in the journal or metrics — the formats must stay
  // byte-compatible with pre-fault-model golden files.
  const auto capture = capture_run(11, faults::FaultType::kComputeHang);
  for (const char* token :
       {"monitor_crash", "lead_failover", "sample_timeout", "degraded",
        "\"coverage\"", "\"missing\"", "\"retries\""}) {
    EXPECT_EQ(capture.journal.find(token), std::string::npos) << token;
    EXPECT_EQ(capture.metrics.find(token), std::string::npos) << token;
  }
}

TEST(TelemetryDeterminism, NoSinkMatchesAttachedSinkVerdicts) {
  // Telemetry must be observation-only: attaching sinks cannot change what
  // the detector decides.
  auto plain = small_lu(11);
  plain.fault = faults::FaultType::kComputeHang;
  const auto without = harness::run_one(plain);
  const auto with = capture_run(11, faults::FaultType::kComputeHang);
  ASSERT_EQ(without.hangs().size(), with.result.hangs().size());
  EXPECT_EQ(without.hangs().front().detected_at,
            with.result.hangs().front().detected_at);
  EXPECT_EQ(without.hangs().front().faulty_ranks,
            with.result.hangs().front().faulty_ranks);
  EXPECT_EQ(without.traces, with.result.traces);
}

}  // namespace
}  // namespace parastack
