#include "obs/perf.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "harness/runner.hpp"

namespace parastack::obs::perf {
namespace {

TEST(PerfCounter, AddAccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(PerfHighWater, KeepsTheMaximumEverObserved) {
  HighWater hw;
  hw.observe(7);
  hw.observe(3);  // lower: must not move the mark
  EXPECT_EQ(hw.value(), 7u);
  hw.observe(19);
  EXPECT_EQ(hw.value(), 19u);
  hw.reset();
  EXPECT_EQ(hw.value(), 0u);
}

TEST(PerfMacros, NullHandlesAreNoOps) {
  Counter* counter = nullptr;
  HighWater* gauge = nullptr;
  Timer* timer = nullptr;
  PS_PERF_ADD(counter, 5);
  PS_PERF_OBSERVE(gauge, 5);
  { PS_PERF_SCOPE(scope, timer); }
  // Nothing to assert beyond "did not dereference null" — the macros are
  // the run-time off switch and must cost one pointer test at most.
  SUCCEED();
}

TEST(PerfScopedTimer, RecordsOncePerScopeAndNestsInclusively) {
  Timer outer;
  Timer inner;
  {
    PS_PERF_SCOPE(a, &outer);
    {
      PS_PERF_SCOPE(b, &inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(outer.calls(), 1u);
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_GT(inner.nanos(), 0u);
  // The inner scope's wall time is included in the enclosing scope's.
  EXPECT_GE(outer.nanos(), inner.nanos());
}

TEST(PerfRegistry, HandlesAreInternedAndStable) {
  ProfileRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.counter("y"));
  // The three instrument namespaces are independent.
  EXPECT_NE(static_cast<void*>(registry.counter("n")),
            static_cast<void*>(registry.high_water("n")));
}

TEST(PerfRegistry, SnapshotSuffixesHighWatersAndExcludesTimers) {
  ProfileRegistry registry;
  registry.counter("events")->add(3);
  registry.high_water("depth")->observe(9);
  registry.timer("stage")->record(1000);
  const auto snapshot = registry.counter_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.at("events"), 3u);
  EXPECT_EQ(snapshot.at("depth.hw"), 9u);
  EXPECT_EQ(snapshot.count("stage"), 0u);  // timers are advisory
}

TEST(PerfRegistry, WriteJsonSortsKeysAndCanOmitTimers) {
  ProfileRegistry registry;
  registry.counter("b")->add(2);
  registry.counter("a")->add(1);
  registry.high_water("q")->observe(5);
  registry.timer("t")->record(10);
  std::ostringstream with_timers;
  registry.write_json(with_timers);
  EXPECT_EQ(with_timers.str().find("\"a\""),
            with_timers.str().find("\"counters\"") + 12);
  EXPECT_NE(with_timers.str().find("\"timers\""), std::string::npos);
  std::ostringstream deterministic;
  registry.write_json(deterministic, /*include_timers=*/false);
  EXPECT_EQ(deterministic.str().find("\"timers\""), std::string::npos);
  EXPECT_NE(deterministic.str().find("\"high_water\""), std::string::npos);
}

harness::RunConfig instrumented_lu(std::uint64_t seed,
                                   ProfileRegistry* registry) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  config.perf = registry;
  return config;
}

TEST(PerfRegistry, RunCountersAreSeedDeterministic) {
  ProfileRegistry first;
  ProfileRegistry second;
  (void)harness::run_one(instrumented_lu(3, &first));
  (void)harness::run_one(instrumented_lu(3, &second));
  const auto a = first.counter_snapshot();
  EXPECT_EQ(a, second.counter_snapshot());
  // The engine, stage, and monitor vocabularies all showed up and counted.
  EXPECT_GT(a.at("sim.events_fired"), 0u);
  EXPECT_GT(a.at("sim.events_scheduled"), 0u);
  EXPECT_GT(a.at("sim.queue_depth.hw"), 0u);
  EXPECT_GT(a.at("stage.sampler.calls"), 0u);
  EXPECT_GT(a.at("monitor.reports_aggregated"), 0u);
}

TEST(PerfRegistry, DetachedRunLeavesRegistryEmpty) {
  ProfileRegistry untouched;
  (void)harness::run_one(instrumented_lu(3, nullptr));
  EXPECT_TRUE(untouched.counter_snapshot().empty());
}

}  // namespace
}  // namespace parastack::obs::perf
