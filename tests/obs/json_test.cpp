#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace parastack::obs {
namespace {

std::string render_string(std::string_view s) {
  std::ostringstream out;
  json_string(out, s);
  return out.str();
}

std::string render_number(double v) {
  std::ostringstream out;
  json_number(out, v);
  return out.str();
}

TEST(JsonString, PlainAscii) {
  EXPECT_EQ(render_string("MPI_Allreduce"), "\"MPI_Allreduce\"");
  EXPECT_EQ(render_string(""), "\"\"");
}

TEST(JsonString, EscapesSpecials) {
  EXPECT_EQ(render_string("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(render_string("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(render_string("a\nb\tc"), "\"a\\nb\\tc\"");
}

TEST(JsonString, EscapesControlCharacters) {
  EXPECT_EQ(render_string(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonNumber, IntegersRenderWithoutExponent) {
  EXPECT_EQ(render_number(0.0), "0");
  EXPECT_EQ(render_number(42.0), "42");
  EXPECT_EQ(render_number(-3.0), "-3");
}

TEST(JsonNumber, FractionsAreStable) {
  EXPECT_EQ(render_number(0.25), "0.25");
  EXPECT_EQ(render_number(0.25), render_number(0.25));
}

TEST(JsonNumber, NonFiniteDegradesToNull) {
  EXPECT_EQ(render_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(render_number(std::nan("")), "null");
}

TEST(JsonObject, CommaDisciplineAndTypes) {
  std::ostringstream out;
  {
    JsonObject object(out);
    object.field("s", "x").field("b", true).field("i", -7);
    object.field("u", std::uint64_t{9}).field("d", 0.5);
    object.raw("a", "[1,2]");
  }
  EXPECT_EQ(out.str(),
            "{\"s\":\"x\",\"b\":true,\"i\":-7,\"u\":9,\"d\":0.5,"
            "\"a\":[1,2]}");
}

TEST(JsonObject, EmptyObjectAndIdempotentDone) {
  std::ostringstream out;
  JsonObject object(out);
  object.done();
  object.done();  // destructor will close a third time
  EXPECT_EQ(out.str(), "{}");
}

}  // namespace
}  // namespace parastack::obs
