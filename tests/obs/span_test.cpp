// Detection-latency span telemetry: golden output in the journal and the
// Chrome trace, digest folding in the metrics registry, and the end-to-end
// guarantee that a detected hang emits the full span breakdown.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/runner.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace parastack::obs {
namespace {

DetectionSpanEvent span_event() {
  DetectionSpanEvent e;
  e.time = 5000;
  e.detector = "parastack";
  e.span = "fault-to-kill";
  e.begin = 1000;
  e.end = 4500;
  e.run_index = 2;
  return e;
}

TEST(DetectionSpan, JournalLineIsGolden) {
  std::ostringstream out;
  JsonlJournal journal(out);
  journal.on_detection_span(span_event());
  EXPECT_EQ(out.str(),
            "{\"ev\":\"det_span\",\"det\":\"parastack\",\"t_ns\":5000,"
            "\"span\":\"fault-to-kill\",\"begin_ns\":1000,\"end_ns\":4500,"
            "\"run\":2}\n");
}

TEST(DetectionSpan, ChromeTraceEmitsCompleteEvent) {
  ChromeTraceWriter trace;
  trace.on_detection_span(span_event());
  std::ostringstream out;
  trace.write(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"cat\":\"detection-latency\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"fault-to-kill\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
}

TEST(DetectionSpan, MetricsSinkFoldsSpansIntoDigests) {
  MetricsRegistry registry;
  MetricsSink sink(registry);
  DetectionSpanEvent e = span_event();
  e.begin = 0;
  e.end = 2 * sim::kSecond;  // 2000 ms
  sink.on_detection_span(e);
  const Digest& digest = registry.digest("span.fault-to-kill_ms");
  ASSERT_EQ(digest.count(), 1u);
  EXPECT_DOUBLE_EQ(digest.values().front(), 2000.0);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_NE(out.str().find("\"span.fault-to-kill_ms\""), std::string::npos);
}

TEST(DetectionSpan, DetectedHangEmitsTheFullBreakdown) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = 3;  // seed with a reliably detected compute hang
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  std::ostringstream bytes;
  JsonlJournal journal(bytes);
  config.telemetry = &journal;
  const auto result = harness::run_one(config);
  ASSERT_TRUE(result.parastack_detected());
  const core::HangReport& hang = result.hangs().front();
  // The report carries the milestones the spans are cut from.
  EXPECT_GE(hang.first_suspicion_at, 0);
  EXPECT_GE(hang.confirmed_at, hang.first_suspicion_at);
  EXPECT_GE(hang.detected_at, hang.confirmed_at);
  const std::string journal_bytes = bytes.str();
  for (const char* span : {"fault-to-suspicion", "suspicion-to-confirm",
                           "confirm-to-kill", "fault-to-kill"}) {
    EXPECT_NE(journal_bytes.find("\"span\":\"" + std::string(span) + "\""),
              std::string::npos)
        << "missing span " << span;
  }
  // Spans are emitted inside the run framing, never after run_end.
  EXPECT_LT(journal_bytes.find("det_span"),
            journal_bytes.find("\"ev\":\"run_end\""));
}

}  // namespace
}  // namespace parastack::obs
