#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "minijson.hpp"

namespace parastack::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(JsonlJournal, EveryEventTypeYieldsOneValidJsonLine) {
  std::ostringstream out;
  JsonlJournal::Options options;
  options.record_rank_spans = true;
  JsonlJournal journal(out, options);

  journal.on_run_start(RunStartEvent{});
  journal.on_monitor_sample(MonitorSampleEvent{});
  journal.on_sample(SampleEvent{});
  journal.on_runs_test(RunsTestEvent{});
  journal.on_interval(IntervalEvent{});
  StreakEvent streak;
  streak.reason = "suspicious-sample";
  journal.on_streak(streak);
  FilterEvent filter;
  filter.evidence = "rank 2: entered MPI_Bcast";
  journal.on_filter(filter);
  SweepEvent sweep;
  sweep.purpose = "faulty-id";
  journal.on_sweep(sweep);
  HangEvent hang;
  hang.faulty_ranks = {1, 2, 3};
  journal.on_hang(hang);
  journal.on_slowdown(SlowdownEvent{});
  journal.on_phase_change(PhaseChangeEvent{});
  FaultEvent fault;
  fault.type = "compute-hang";
  journal.on_fault(fault);
  RankSpanEvent span;
  span.func = "jacld";
  journal.on_rank_span(span);
  journal.on_run_end(RunEndEvent{});

  const auto lines = lines_of(out.str());
  EXPECT_EQ(lines.size(), 14u);
  EXPECT_EQ(journal.lines_written(), lines.size());
  for (const auto& line : lines) {
    EXPECT_TRUE(testjson::is_valid_json(line)) << line;
    EXPECT_NE(line.find("\"ev\":"), std::string::npos) << line;
  }
}

TEST(JsonlJournal, SampleLineCarriesTheDetectorDecision) {
  std::ostringstream out;
  JsonlJournal journal(out);
  SampleEvent e;
  e.time = 1500000000;  // 1.5 virtual seconds
  e.scrout = 0.125;
  e.suspicious = true;
  e.streak = 4;
  e.required_streak = 5;
  e.threshold = 0.0625;
  journal.on_sample(e);
  const auto line = out.str();
  EXPECT_NE(line.find("\"ev\":\"sample\""), std::string::npos);
  EXPECT_NE(line.find("\"t_ns\":1500000000"), std::string::npos);
  EXPECT_NE(line.find("\"scrout\":0.125"), std::string::npos);
  EXPECT_NE(line.find("\"suspicious\":true"), std::string::npos);
  EXPECT_NE(line.find("\"streak\":4"), std::string::npos);
  EXPECT_NE(line.find("\"k\":5"), std::string::npos);
}

TEST(JsonlJournal, HangLineRendersFaultyRanksAsArray) {
  std::ostringstream out;
  JsonlJournal journal(out);
  HangEvent e;
  e.computation_error = true;
  e.faulty_ranks = {7, 90};
  journal.on_hang(e);
  const auto line = out.str();
  EXPECT_NE(line.find("\"faulty_ranks\":[7,90]"), std::string::npos) << line;
  EXPECT_NE(line.find("\"kind\":\"computation\""), std::string::npos);
}

TEST(JsonlJournal, RankSpansAreDroppedUnlessOptedIn) {
  std::ostringstream out;
  JsonlJournal journal(out);  // default: no spans
  EXPECT_FALSE(journal.wants_rank_spans());
  journal.on_rank_span(RankSpanEvent{});
  EXPECT_EQ(out.str(), "");
  EXPECT_EQ(journal.lines_written(), 0u);
}

TEST(MultiSink, FansOutToAllChildren) {
  std::ostringstream out1;
  std::ostringstream out2;
  JsonlJournal j1(out1);
  JsonlJournal::Options with_spans;
  with_spans.record_rank_spans = true;
  JsonlJournal j2(out2, with_spans);
  MultiSink multi;
  EXPECT_TRUE(multi.empty());
  multi.add(&j1);
  EXPECT_FALSE(multi.wants_rank_spans());
  multi.add(&j2);
  EXPECT_TRUE(multi.wants_rank_spans());  // ORs its children
  multi.on_sample(SampleEvent{});
  EXPECT_EQ(j1.lines_written(), 1u);
  EXPECT_EQ(j2.lines_written(), 1u);
}

}  // namespace
}  // namespace parastack::obs
