#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "minijson.hpp"

namespace parastack::obs {
namespace {

std::string export_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  registry.write_json(out);
  return out.str();
}

TEST(MetricsRegistry, CountersCreateOnFirstUseAndAccumulate) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.has_counter("detector.samples"));
  registry.counter("detector.samples") += 3;
  registry.counter("detector.samples")++;
  EXPECT_TRUE(registry.has_counter("detector.samples"));
  EXPECT_EQ(registry.counter_value("detector.samples"), 4u);
  EXPECT_EQ(registry.counter_value("never.touched"), 0u);
}

TEST(MetricsRegistry, HistogramShapeFixedByFirstCaller) {
  MetricsRegistry registry;
  auto& h1 = registry.histogram("delay", 0.0, 10.0, 5);
  auto& h2 = registry.histogram("delay", 0.0, 99.0, 50);  // ignored shape
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bucket_count(), 5u);
}

TEST(MetricsRegistry, EmptyRegistryExportsValidJson) {
  MetricsRegistry registry;
  const auto text = export_json(registry);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  EXPECT_EQ(text,
            "{\"counters\":{},\"digests\":{},\"gauges\":{},\"summaries\":{},"
            "\"histograms\":{}}");
}

TEST(MetricsRegistry, PopulatedExportIsValidJsonWithSortedKeys) {
  MetricsRegistry registry;
  registry.counter("z.last") = 2;
  registry.counter("a.first") = 1;
  registry.gauge("detector.q") = 0.25;
  auto& s = registry.summary("delay_seconds");
  s.add(1.0);
  s.add(3.0);
  registry.histogram("scrout", 0.0, 1.0, 4).add(0.3);
  const auto text = export_json(registry);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
  // std::map ordering makes the export deterministic.
  EXPECT_LT(text.find("a.first"), text.find("z.last"));
  EXPECT_NE(text.find("\"detector.q\":0.25"), std::string::npos);
  EXPECT_NE(text.find("\"count\":2"), std::string::npos);
  EXPECT_NE(text.find("\"mean\":2"), std::string::npos);
}

TEST(MetricsRegistry, ExportIsByteStableAcrossInsertionOrders) {
  MetricsRegistry forward;
  forward.counter("a") = 1;
  forward.counter("b") = 2;
  forward.gauge("g") = 0.5;
  MetricsRegistry backward;
  backward.gauge("g") = 0.5;
  backward.counter("b") = 2;
  backward.counter("a") = 1;
  EXPECT_EQ(export_json(forward), export_json(backward));
}

TEST(MetricsSink, FoldsSampleEventsIntoDetectorCounters) {
  MetricsRegistry registry;
  MetricsSink sink(registry);
  SampleEvent sample;
  sample.scrout = 0.6;
  sample.suspicious = false;
  sink.on_sample(sample);
  sample.scrout = 0.0;
  sample.suspicious = true;
  sample.streak = 1;
  sink.on_sample(sample);
  EXPECT_EQ(registry.counter_value("detector.samples"), 2u);
  EXPECT_EQ(registry.counter_value("detector.suspicious_samples"), 1u);
  const auto text = export_json(registry);
  EXPECT_TRUE(testjson::is_valid_json(text)) << text;
}

TEST(MetricsSink, CountsLifecycleEvents) {
  MetricsRegistry registry;
  MetricsSink sink(registry);
  sink.on_run_start(RunStartEvent{});
  sink.on_fault(FaultEvent{});
  HangEvent hang;
  hang.faulty_ranks = {4, 9};
  sink.on_hang(hang);
  SlowdownEvent slowdown;
  slowdown.rounds = 2;
  sink.on_slowdown(slowdown);
  RunEndEvent end;
  end.killed = true;
  sink.on_run_end(end);
  EXPECT_EQ(registry.counter_value("harness.runs"), 1u);
  EXPECT_EQ(registry.counter_value("harness.runs_killed"), 1u);
  EXPECT_EQ(registry.counter_value("faults.activated"), 1u);
  EXPECT_EQ(registry.counter_value("detector.hangs"), 1u);
  EXPECT_EQ(registry.counter_value("detector.faulty_ranks_reported"), 2u);
  EXPECT_EQ(registry.counter_value("detector.slowdowns_absorbed"), 1u);
}

}  // namespace
}  // namespace parastack::obs
