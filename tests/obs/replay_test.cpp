#include "obs/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/journal.hpp"

namespace parastack::obs {
namespace {

// Emit a representative event mix into a sink. String-view fields point
// at a short-lived buffer on purpose: the recorder must deep-copy them.
void emit_stream(TelemetrySink& sink) {
  {
    std::string bench = "lu";
    std::string input = "C";
    std::string platform = "tianhe2";
    std::string fault = "compute_hang";
    RunStartEvent start;
    start.bench = bench;
    start.input = input;
    start.nranks = 32;
    start.nnodes = 2;
    start.platform = platform;
    start.seed = 1234;
    start.run_index = 3;
    start.estimated_clean = 100 * sim::kSecond;
    start.walltime = 200 * sim::kSecond;
    start.fault_planned = fault;
    sink.on_run_start(start);
  }  // the backing strings die here

  SampleEvent sample;
  sample.time = 5 * sim::kSecond;
  sample.observation = 1;
  sample.scrout = 0.25;
  sample.threshold = 0.1;
  sink.on_sample(sample);

  HangEvent hang;
  hang.time = 50 * sim::kSecond;
  hang.computation_error = true;
  hang.faulty_ranks = {7, 9};
  hang.streak = 4;
  hang.q = 0.05;
  hang.required_streak = 4;
  sink.on_hang(hang);
}

std::string journal_of(const RecordingSink* recording) {
  std::ostringstream out;
  JsonlJournal journal(out);
  if (recording != nullptr) {
    recording->replay(journal);
  } else {
    emit_stream(journal);
  }
  return out.str();
}

TEST(RecordingSink, ReplayMatchesDirectEmissionByteForByte) {
  RecordingSink recording;
  emit_stream(recording);
  EXPECT_EQ(recording.size(), 3u);
  EXPECT_EQ(journal_of(&recording), journal_of(nullptr));
}

TEST(RecordingSink, SurvivesTheProducersStringsDying) {
  // emit_stream's RunStartEvent views local strings that are gone by the
  // time we replay; the interned copies must still render correctly.
  RecordingSink recording;
  emit_stream(recording);
  const std::string text = journal_of(&recording);
  EXPECT_NE(text.find("tianhe2"), std::string::npos);
  EXPECT_NE(text.find("compute_hang"), std::string::npos);
}

TEST(RecordingSink, ReplayIsRepeatable) {
  RecordingSink recording;
  emit_stream(recording);
  EXPECT_EQ(journal_of(&recording), journal_of(&recording));
}

TEST(RecordingSink, MirrorsRankSpanAppetite) {
  EXPECT_FALSE(RecordingSink(false).wants_rank_spans());
  EXPECT_TRUE(RecordingSink(true).wants_rank_spans());
}

TEST(RecordingSink, StartsEmpty) {
  const RecordingSink recording;
  EXPECT_TRUE(recording.empty());
  EXPECT_EQ(recording.size(), 0u);
}

}  // namespace
}  // namespace parastack::obs
