#!/usr/bin/env bash
# CLI contract test for pscheck, the property-based scenario fuzzer:
#   1. a small clean sweep exits 0 and reports every seed clean;
#   2. a planted clock violation is caught (exit 1), shrunk, and the
#      printed one-line repro command reproduces the failure;
#   3. without the plant, the same repro scenario is clean again;
#   4. flag typos are rejected loudly.
# Usage: pscheck_cli_test.sh /path/to/pscheck
set -u

PSCHECK=${1:?usage: pscheck_cli_test.sh /path/to/pscheck}
failures=0

note() { echo "ok $1"; }
flunk() {
  echo "FAIL $1" >&2
  failures=$((failures + 1))
}

# --- 1. clean smoke sweep -------------------------------------------------
out=$("$PSCHECK" --seeds 8 --seed0 1 --quiet --no-campaign-oracle 2>&1)
rc=$?
if [[ $rc -ne 0 ]]; then
  flunk "clean-sweep: exit $rc, expected 0: $out"
elif [[ $out != *"8/8 seeds clean"* ]]; then
  flunk "clean-sweep: missing summary line: $out"
else
  note clean-sweep
fi

# --- 2. planted violation: caught, shrunk, repro printed -------------------
out=$("$PSCHECK" --seed 3 --plant=clock --no-campaign-oracle \
  --shrink-budget 25 2>&1)
rc=$?
if [[ $rc -ne 1 ]]; then
  flunk "plant-caught: exit $rc, expected 1: $out"
elif [[ $out != *"planted-clock"* ]]; then
  flunk "plant-caught: failure not attributed to planted-clock: $out"
elif [[ $out != *"shrunk in"* ]]; then
  flunk "plant-caught: no shrinking happened: $out"
else
  note plant-caught
fi

repro_cmd=$(printf '%s\n' "$out" | sed -n "s/^  repro: pscheck //p")
if [[ -z $repro_cmd ]]; then
  flunk "plant-repro-line: no repro command printed: $out"
else
  note plant-repro-line
  # Extract the quoted scenario string and the --plant flag.
  repro_str=$(printf '%s\n' "$repro_cmd" | sed -n "s/^--repro='\([^']*\)'.*/\1/p")
  if [[ -z $repro_str ]]; then
    flunk "plant-repro-parse: could not extract scenario from: $repro_cmd"
  else
    # --- 3a. the repro command reproduces the failure ----------------------
    out2=$("$PSCHECK" --repro="$repro_str" --plant=clock --no-shrink \
      --no-campaign-oracle 2>&1)
    rc2=$?
    if [[ $rc2 -ne 1 || $out2 != *"planted-clock"* ]]; then
      flunk "plant-reproduces: exit $rc2: $out2"
    else
      note plant-reproduces
    fi
    # --- 3b. without the plant the same scenario is clean ------------------
    out3=$("$PSCHECK" --repro="$repro_str" --no-campaign-oracle 2>&1)
    rc3=$?
    if [[ $rc3 -ne 0 || $out3 != *"clean"* ]]; then
      flunk "repro-clean-without-plant: exit $rc3: $out3"
    else
      note repro-clean-without-plant
    fi
  fi
fi

# --- 4. loud flag validation ----------------------------------------------
err=$("$PSCHECK" --sees 8 2>&1 >/dev/null)
if [[ $? -ne 2 || $err != *"unknown option --sees"* ]]; then
  flunk "typo-rejected: $err"
else
  note typo-rejected
fi

err=$("$PSCHECK" --plant=entropy 2>&1 >/dev/null)
if [[ $? -ne 2 || $err != *"unknown --plant kind"* ]]; then
  flunk "bad-plant-rejected: $err"
else
  note bad-plant-rejected
fi

err=$("$PSCHECK" --repro='v1,what=ever' 2>&1 >/dev/null)
if [[ $? -ne 2 || $err != *"malformed"* ]]; then
  flunk "bad-repro-rejected: $err"
else
  note bad-repro-rejected
fi

if [[ $failures -ne 0 ]]; then
  echo "$failures pscheck CLI check(s) failed" >&2
  exit 1
fi
echo "all pscheck CLI checks passed"
