#!/usr/bin/env bash
# Smoke test for the perf-trajectory pipeline: bench_perf --quick runs to
# completion, writes a BENCH file with the expected metrics, emits a
# --metrics-out dump, and psperf accepts the file compared against itself
# (a self-comparison can never regress).
# Usage: bench_perf_smoke_test.sh /path/to/bench_perf /path/to/psperf
set -u

BENCH=${1:?usage: bench_perf_smoke_test.sh /path/to/bench_perf /path/to/psperf}
PSPERF=${2:?usage: bench_perf_smoke_test.sh /path/to/bench_perf /path/to/psperf}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

if ! "$BENCH" --quick --out "$workdir/BENCH_6.json" \
    --metrics-out "$workdir/metrics.json" > "$workdir/out.txt" 2>&1; then
  echo "FAIL: bench_perf --quick exited non-zero" >&2
  cat "$workdir/out.txt" >&2
  exit 1
fi

for needle in trials_per_sec sim_events_per_sec trials_per_sec_noperf \
    perf_overhead_pct '"counters"' '"scenario":"small"' \
    '"scenario":"medium"' '"scenario":"huge"'; do
  if ! grep -q -- "$needle" "$workdir/BENCH_6.json"; then
    echo "FAIL: BENCH_6.json missing $needle" >&2
    cat "$workdir/BENCH_6.json" >&2
    exit 1
  fi
done
echo "ok bench-file-content"

if ! grep -q '"perf.sim.events_fired"' "$workdir/metrics.json"; then
  echo "FAIL: --metrics-out dump missing folded perf counters" >&2
  cat "$workdir/metrics.json" >&2
  exit 1
fi
echo "ok metrics-out"

if ! "$PSPERF" --check "$workdir/BENCH_6.json" "$workdir/BENCH_6.json" \
    > "$workdir/psperf.txt" 2>&1; then
  echo "FAIL: psperf --check rejected a self-comparison" >&2
  cat "$workdir/psperf.txt" >&2
  exit 1
fi
echo "ok psperf-self-check"
echo "bench_perf smoke passed"
