#!/usr/bin/env bash
# CLI contract test for psperf: a synthetic throughput regression between
# two BENCH files must fail --check (the acceptance criterion of ISSUE 6),
# matching files must pass, the threshold must be tunable, the direction
# must be metric-aware (latency regresses upwards), and malformed input
# must be rejected with a usage/parse error.
# Usage: psperf_cli_test.sh /path/to/psperf
set -u

PSPERF=${1:?usage: psperf_cli_test.sh /path/to/psperf}
failures=0
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

bench_file() {
  local path=$1 trials=$2 span=$3
  cat > "$path" <<EOF
{"bench":"bench_perf","issue":6,"mode":"quick","records":[
  {"scenario":"small","metric":"trials_per_sec","value":$trials,"stddev":0.5,"counters":{"sim.events_fired":12345,"sim.queue_depth.hw":64}},
  {"scenario":"small","metric":"span_fault_to_kill_p50_ms","value":$span,"stddev":0}
]}
EOF
}

bench_file "$workdir/base.json" 100.0 2000
bench_file "$workdir/same.json" 98.0 2000    # within the default 25%
bench_file "$workdir/slow.json" 50.0 2000    # halved throughput: regression
bench_file "$workdir/lag.json" 100.0 9000    # latency regression (upwards)

check() {
  local name=$1 expected_rc=$2
  shift 2
  "$PSPERF" "$@" > "$workdir/out.txt" 2>&1
  local rc=$?
  if [[ $rc -ne $expected_rc ]]; then
    echo "FAIL $name: exit code $rc, expected $expected_rc" >&2
    cat "$workdir/out.txt" >&2
    failures=$((failures + 1))
  else
    echo "ok $name"
  fi
}

# Comparison without --check always reports, never gates.
check report-only 0 "$workdir/base.json" "$workdir/slow.json"

# --check: identical-enough files pass, a halved throughput fails.
check check-pass 0 --check "$workdir/base.json" "$workdir/same.json"
check check-throughput-regression 1 --check "$workdir/base.json" "$workdir/slow.json"

# Direction awareness: a latency metric regresses UPWARDS.
check check-latency-regression 1 --check "$workdir/base.json" "$workdir/lag.json"

# Threshold is tunable: a 2% drop trips a 1% threshold.
check check-tight-threshold 1 --check --threshold 0.01 \
  "$workdir/base.json" "$workdir/same.json"
# ...and a 60% threshold forgives the halving.
check check-loose-threshold 0 --check --threshold=0.6 \
  "$workdir/base.json" "$workdir/slow.json"

# Three-file trajectory: middle columns are informational; the comparison
# is first vs last.
check trajectory-regression 1 --check \
  "$workdir/base.json" "$workdir/same.json" "$workdir/slow.json"

# The regression table must name the offending metric.
out=$("$PSPERF" "$workdir/base.json" "$workdir/slow.json" 2>&1)
if [[ $out != *"small/trials_per_sec"* || $out != *"REGRESSION"* ]]; then
  echo "FAIL table-content: missing metric row or REGRESSION marker" >&2
  echo "$out" >&2
  failures=$((failures + 1))
else
  echo "ok table-content"
fi

# Usage and parse errors exit 2.
check usage-no-files 2
check usage-one-file 2 "$workdir/base.json"
echo 'not json' > "$workdir/bad.json"
check malformed-json 2 --check "$workdir/base.json" "$workdir/bad.json"
check missing-file 2 "$workdir/base.json" "$workdir/does-not-exist.json"
check unknown-flag 2 --frobnicate "$workdir/base.json" "$workdir/same.json"

if [[ $failures -ne 0 ]]; then
  echo "$failures psperf CLI check(s) failed" >&2
  exit 1
fi
echo "all psperf CLI checks passed"
