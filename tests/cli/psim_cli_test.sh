#!/usr/bin/env bash
# CLI contract test for psim: bad enum-style flag values must name the valid
# set and exit non-zero (a typo must not silently run a different
# experiment), and --tool-faults must round-trip through a real run.
# Usage: psim_cli_test.sh /path/to/psim
set -u

PSIM=${1:?usage: psim_cli_test.sh /path/to/psim}
failures=0

# expect_reject NAME EXPECTED_STDERR_SNIPPET ARGS...
# Asserts exit code 2 and that stderr mentions the valid choices.
expect_reject() {
  local name=$1 snippet=$2
  shift 2
  local err
  err=$("$PSIM" "$@" 2>&1 >/dev/null)
  local rc=$?
  if [[ $rc -ne 2 ]]; then
    echo "FAIL $name: exit code $rc, expected 2" >&2
    failures=$((failures + 1))
  elif [[ $err != *"$snippet"* ]]; then
    echo "FAIL $name: stderr missing '$snippet': $err" >&2
    failures=$((failures + 1))
  else
    echo "ok $name"
  fi
}

expect_reject unknown-benchmark "unknown benchmark 'QR'" \
  run --bench QR --ranks 32
expect_reject unknown-platform "expected Tardis|Tianhe-2|Stampede" \
  run --bench LU --ranks 32 --platform BlueGene
expect_reject unknown-fault "unknown fault type 'fire'" \
  run --bench LU --ranks 32 --fault fire
expect_reject unknown-detector "expected parastack|timeout|io-watchdog" \
  run --bench LU --ranks 32 --detectors parastack,sentinel
expect_reject unknown-tool-fault-key "unknown tool-fault key 'los'" \
  run --bench LU --ranks 32 --tool-faults los=0.05
expect_reject malformed-crash "expected NODE@SEC or rand@SEC" \
  run --bench LU --ranks 32 --tool-faults crash=3
expect_reject garbage-tool-fault-value "bad --tool-faults value" \
  run --bench LU --ranks 32 --tool-faults loss=lots
expect_reject unknown-batch-system "expected slurm|torque" \
  submit --bench LU --ranks 32 --system lsf
expect_reject bad-fleet-jobs "bad --fleet value" \
  run --bench LU --ranks 32 --fleet=0
expect_reject bad-fleet-arrival "expected JOBS[,poisson|trace,POOL]" \
  run --bench LU --ranks 32 --fleet=2,bursty

# A valid faulty run with tool faults: exits 0 and reports the tool-fault
# accounting line on stdout.
out=$("$PSIM" run --bench LU --input C --ranks 32 --seed 11 \
  --fault compute-hang --tool-faults loss=0.1,crash=rand@30 2>&1)
rc=$?
if [[ $rc -ne 0 ]]; then
  echo "FAIL tool-fault-run: exit code $rc, expected 0" >&2
  echo "$out" >&2
  failures=$((failures + 1))
elif [[ $out != *"tool faults:"* ]]; then
  echo "FAIL tool-fault-run: stdout missing 'tool faults:' line" >&2
  echo "$out" >&2
  failures=$((failures + 1))
else
  echo "ok tool-fault-run"
fi

# Faults-off runs must NOT print the tool-fault accounting line.
out=$("$PSIM" run --bench LU --input C --ranks 32 --seed 11 \
  --fault compute-hang 2>&1)
rc=$?
if [[ $rc -ne 0 ]]; then
  echo "FAIL clean-run: exit code $rc, expected 0" >&2
  failures=$((failures + 1))
elif [[ $out == *"tool faults:"* ]]; then
  echo "FAIL clean-run: unexpected 'tool faults:' line in faults-off run" >&2
  failures=$((failures + 1))
else
  echo "ok clean-run"
fi

# --fleet=1 must write byte-identical journal/metrics/trace artifacts to
# the legacy single-job path — the fleet layer's core compatibility bar.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
"$PSIM" run --bench LU --input C --ranks 32 --seed 11 --fault compute-hang \
  --journal "$tmp/legacy.jsonl" --metrics-out "$tmp/legacy.json" \
  --chrome-trace "$tmp/legacy.trace" >/dev/null 2>&1
"$PSIM" run --bench LU --input C --ranks 32 --seed 11 --fault compute-hang \
  --fleet=1 --journal "$tmp/fleet.jsonl" --metrics-out "$tmp/fleet.json" \
  --chrome-trace "$tmp/fleet.trace" >/dev/null 2>&1
for artifact in jsonl json trace; do
  if ! cmp -s "$tmp/legacy.$artifact" "$tmp/fleet.$artifact"; then
    echo "FAIL fleet-identity: .$artifact diverged under --fleet=1" >&2
    failures=$((failures + 1))
  else
    echo "ok fleet-identity-$artifact"
  fi
done

# A multi-tenant fleet run exits 0 and reports the admission/ingest/bill
# summary lines.
out=$("$PSIM" run --bench LU --input C --ranks 32 --seed 11 \
  --fault compute-hang --fleet=3,trace,4 2>&1)
rc=$?
if [[ $rc -ne 0 ]]; then
  echo "FAIL fleet-run: exit code $rc, expected 0" >&2
  echo "$out" >&2
  failures=$((failures + 1))
elif [[ $out != *"admission:"* || $out != *"ingest:"* || $out != *"bill:"* ]]
then
  echo "FAIL fleet-run: missing admission/ingest/bill summary" >&2
  echo "$out" >&2
  failures=$((failures + 1))
else
  echo "ok fleet-run"
fi

if [[ $failures -ne 0 ]]; then
  echo "$failures CLI check(s) failed" >&2
  exit 1
fi
echo "all CLI checks passed"
