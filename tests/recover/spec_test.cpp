#include "recover/spec.hpp"

#include <gtest/gtest.h>

namespace parastack::recover {
namespace {

TEST(RecoverySpec, ParseNone) {
  const auto spec = parse_recovery("none");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->policy, RecoveryPolicy::kNone);
  EXPECT_FALSE(spec->active());
}

TEST(RecoverySpec, ParseCkptDefaults) {
  const auto spec = parse_recovery("ckpt");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->policy, RecoveryPolicy::kCheckpointRestart);
  EXPECT_EQ(spec->checkpoint_interval, 60 * sim::kSecond);
  EXPECT_EQ(spec->checkpoint_cost, sim::kSecond);
}

TEST(RecoverySpec, ParseCkptIntervalAndCost) {
  const auto spec = parse_recovery("ckpt:30,2.5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->checkpoint_interval, 30 * sim::kSecond);
  EXPECT_EQ(spec->checkpoint_cost, sim::from_seconds(2.5));
}

TEST(RecoverySpec, ParseSpareCount) {
  const auto spec = parse_recovery("spare:5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->policy, RecoveryPolicy::kSpareFailover);
  EXPECT_EQ(spec->spare_count, 5);
}

TEST(RecoverySpec, ParseTeamReplicas) {
  const auto spec = parse_recovery("team:3");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->policy, RecoveryPolicy::kTeamReplication);
  EXPECT_EQ(spec->replicas, 3);
}

TEST(RecoverySpec, RejectsMalformedInput) {
  EXPECT_FALSE(parse_recovery("bogus").has_value());
  EXPECT_FALSE(parse_recovery("none:1").has_value());
  EXPECT_FALSE(parse_recovery("ckpt:").has_value());
  EXPECT_FALSE(parse_recovery("ckpt:0").has_value());
  EXPECT_FALSE(parse_recovery("ckpt:-5").has_value());
  EXPECT_FALSE(parse_recovery("ckpt:30,1,9").has_value());
  EXPECT_FALSE(parse_recovery("spare:0").has_value());
  EXPECT_FALSE(parse_recovery("spare:two").has_value());
  EXPECT_FALSE(parse_recovery("team:1").has_value());  // one team: no spare
  EXPECT_FALSE(parse_recovery("").has_value());
}

TEST(RecoverySpec, FormatRoundTripsParsedFields) {
  for (const char* text : {"none", "ckpt:30,2", "spare:4", "team:3"}) {
    const auto spec = parse_recovery(text);
    ASSERT_TRUE(spec.has_value()) << text;
    const auto again = parse_recovery(format_recovery(*spec));
    ASSERT_TRUE(again.has_value()) << text;
    EXPECT_EQ(*spec, *again) << text;
  }
}

TEST(RecoverySpec, PolicyNamesAreStable) {
  EXPECT_EQ(recovery_policy_name(RecoveryPolicy::kNone), "none");
  EXPECT_EQ(recovery_policy_name(RecoveryPolicy::kCheckpointRestart), "ckpt");
  EXPECT_EQ(recovery_policy_name(RecoveryPolicy::kSpareFailover), "spare");
  EXPECT_EQ(recovery_policy_name(RecoveryPolicy::kTeamReplication), "team");
}

}  // namespace
}  // namespace parastack::recover
