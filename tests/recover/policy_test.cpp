#include "recover/policy.hpp"

#include <gtest/gtest.h>

namespace parastack::recover {
namespace {

simmpi::WorldSnapshot snapshot_at(sim::Time t) {
  simmpi::WorldSnapshot snap;
  snap.taken_at = t;
  snap.rank_actions = {10, 12, 9, 11};
  return snap;
}

core::RecoveryVerdict hang_verdict(sim::Time at) {
  core::RecoveryVerdict verdict;
  verdict.killed_at = at;
  verdict.kind = core::DetectorKind::kParastack;
  verdict.faulty_ranks = {2};
  return verdict;
}

TEST(CheckpointRestartPolicy, ColdRestartWithoutCheckpoint) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kCheckpointRestart;
  CheckpointRestartPolicy policy(spec);
  const auto at_kill = snapshot_at(100 * sim::kSecond);
  const auto decision =
      policy.on_kill(hang_verdict(100 * sim::kSecond), nullptr, at_kill);
  EXPECT_TRUE(decision.restart);
  EXPECT_TRUE(decision.resume.empty());  // no checkpoint: from scratch
  EXPECT_EQ(decision.overhead, spec.restart_cost);
  EXPECT_NE(decision.detail.find("cold restart"), std::string::npos);
}

TEST(CheckpointRestartPolicy, RollsBackToLastCheckpoint) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kCheckpointRestart;
  CheckpointRestartPolicy policy(spec);
  const auto checkpoint = snapshot_at(60 * sim::kSecond);
  const auto at_kill = snapshot_at(100 * sim::kSecond);
  const auto decision =
      policy.on_kill(hang_verdict(100 * sim::kSecond), &checkpoint, at_kill);
  EXPECT_TRUE(decision.restart);
  // A rollback discards post-checkpoint work: resume is the checkpoint,
  // never the warmer at-kill state.
  EXPECT_EQ(decision.resume.taken_at, 60 * sim::kSecond);
  EXPECT_EQ(decision.resume.rank_actions, checkpoint.rank_actions);
}

TEST(SpareFailoverPolicy, ConsumesOneSparePerFaultyRank) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kSpareFailover;
  spec.spare_count = 3;
  SpareFailoverPolicy policy(spec);
  auto verdict = hang_verdict(100 * sim::kSecond);
  verdict.faulty_ranks = {2, 5};
  const auto at_kill = snapshot_at(100 * sim::kSecond);
  const auto decision = policy.on_kill(verdict, nullptr, at_kill);
  EXPECT_TRUE(decision.restart);
  EXPECT_EQ(policy.spares_left(), 1);
  // Spares resume warm, from the killed world's own progress.
  EXPECT_EQ(decision.resume.taken_at, at_kill.taken_at);
  EXPECT_EQ(decision.overhead, spec.failover_cost);
}

TEST(SpareFailoverPolicy, EmptyFaultySetStillNeedsOneSpare) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kSpareFailover;
  spec.spare_count = 1;
  SpareFailoverPolicy policy(spec);
  auto verdict = hang_verdict(50 * sim::kSecond);
  verdict.faulty_ranks.clear();  // communication error: no identified rank
  const auto decision =
      policy.on_kill(verdict, nullptr, snapshot_at(50 * sim::kSecond));
  EXPECT_TRUE(decision.restart);
  EXPECT_EQ(policy.spares_left(), 0);
}

TEST(SpareFailoverPolicy, ExhaustionRefusesRestart) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kSpareFailover;
  spec.spare_count = 1;
  SpareFailoverPolicy policy(spec);
  auto verdict = hang_verdict(50 * sim::kSecond);
  verdict.faulty_ranks = {1, 3};  // needs 2, has 1
  const auto decision =
      policy.on_kill(verdict, nullptr, snapshot_at(50 * sim::kSecond));
  EXPECT_FALSE(decision.restart);
  EXPECT_EQ(policy.spares_left(), 1);  // a refused failover burns nothing
  EXPECT_NE(decision.detail.find("exhausted"), std::string::npos);
}

TEST(TeamReplicationPolicy, PromotesTrailingReplica) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kTeamReplication;
  spec.replicas = 3;
  TeamReplicationPolicy policy(spec);
  EXPECT_EQ(policy.su_multiplier(), 3.0);
  EXPECT_EQ(policy.checkpoint_interval(), spec.replica_skew);
  const auto trailing = snapshot_at(85 * sim::kSecond);
  const auto decision = policy.on_kill(hang_verdict(100 * sim::kSecond),
                                       &trailing,
                                       snapshot_at(100 * sim::kSecond));
  EXPECT_TRUE(decision.restart);
  EXPECT_EQ(policy.switches_left(), 1);
  // The promoted team trails by one skew cadence, never resumes at-kill.
  EXPECT_EQ(decision.resume.taken_at, 85 * sim::kSecond);
  EXPECT_EQ(decision.overhead, spec.arbitration_cost);
}

TEST(TeamReplicationPolicy, DegradedVerdictDoublesArbitration) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kTeamReplication;
  spec.replicas = 2;
  TeamReplicationPolicy policy(spec);
  auto verdict = hang_verdict(100 * sim::kSecond);
  verdict.degraded = true;  // second-hand kill: re-verify before trusting
  const auto decision =
      policy.on_kill(verdict, nullptr, snapshot_at(100 * sim::kSecond));
  EXPECT_TRUE(decision.restart);
  EXPECT_EQ(decision.overhead, 2 * spec.arbitration_cost);
  EXPECT_NE(decision.detail.find("re-verified"), std::string::npos);
}

TEST(TeamReplicationPolicy, ReplicaExhaustionRefuses) {
  RecoverySpec spec;
  spec.policy = RecoveryPolicy::kTeamReplication;
  spec.replicas = 2;  // one promotion only
  TeamReplicationPolicy policy(spec);
  (void)policy.on_kill(hang_verdict(50 * sim::kSecond), nullptr,
                       snapshot_at(50 * sim::kSecond));
  const auto second = policy.on_kill(hang_verdict(80 * sim::kSecond), nullptr,
                                     snapshot_at(80 * sim::kSecond));
  EXPECT_FALSE(second.restart);
  EXPECT_NE(second.detail.find("exhausted"), std::string::npos);
}

TEST(MakePolicy, DispatchesOnSpec) {
  RecoverySpec spec;
  EXPECT_EQ(make_policy(spec), nullptr);
  spec.policy = RecoveryPolicy::kCheckpointRestart;
  EXPECT_EQ(make_policy(spec)->policy_name(), "ckpt");
  spec.policy = RecoveryPolicy::kSpareFailover;
  EXPECT_EQ(make_policy(spec)->policy_name(), "spare");
  spec.policy = RecoveryPolicy::kTeamReplication;
  EXPECT_EQ(make_policy(spec)->policy_name(), "team");
}

}  // namespace
}  // namespace parastack::recover
