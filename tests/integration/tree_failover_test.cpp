// Resilience coverage for the k-ary aggregation tree: interior-monitor
// deaths must promote a deterministic survivor and re-parent its subtree,
// a dead root must fail over to its promoted child (the tree
// generalization of lead failover), cascades must keep the survivors
// aggregating, and the compatibility default — fan-out "infinity", the
// flat star — must stay byte-identical to a run that never heard of
// trees. Exercised both directly against MonitorNetwork and end-to-end
// through run_one()'s journal.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/monitor_network.hpp"
#include "harness/runner.hpp"
#include "obs/journal.hpp"
#include "workloads/synthetic.hpp"

namespace parastack {
namespace {

std::shared_ptr<const workloads::BenchmarkProfile> small_profile() {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->iterations = 4000;
  profile->reference_ranks = 48;
  profile->setup_time = sim::from_millis(100);
  profile->phases = {
      {"w", sim::from_millis(25), 0.12,
       workloads::CommPattern::kHaloBlocking, 64 * 1024},
      {"n", sim::from_millis(5), 0.1, workloads::CommPattern::kAllreduce, 16},
  };
  return profile;
}

/// 192 ranks on Tianhe-2 (24 cores/node) = 8 monitors. With fan-out 2 and
/// the identity placement (seed 0) the tree is the complete binary tree:
/// children(0)={1,2}, children(1)={3,4}, children(2)={5,6}, children(3)={7}.
simmpi::WorldConfig config192(std::uint64_t seed = 21) {
  simmpi::WorldConfig config;
  config.nranks = 192;
  config.platform = sim::Platform::tianhe2();
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

core::TopologyConfig fanout2() {
  core::TopologyConfig config;
  config.fanout = 2;
  return config;
}

/// One rank per node: every monitor is active for this set.
const std::vector<simmpi::Rank> kAllNodesSet = {0,  24,  48,  72,
                                                96, 120, 144, 168};

TEST(TreeAggregation, HealthyGatherClimbsTheTree) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  network.set_topology(fanout2());
  ASSERT_TRUE(network.tree_mode());
  ASSERT_EQ(network.lead_monitor(), 0);

  const auto m = network.measure(kAllNodesSet);
  EXPECT_EQ(m.ranks_traced, 8);
  EXPECT_EQ(m.active_monitors, 8);
  // Every carrier but the root forwards once: 7 hops, but the root only
  // ever hears from its own two children.
  EXPECT_EQ(network.messages_sent(), 7u);
  EXPECT_EQ(network.tree_hops(), 7u);
  EXPECT_EQ(m.root_fan_in, 2);
  EXPECT_EQ(network.root_messages(), 2u);
  EXPECT_EQ(m.levels, 3);  // node 7 sits three hops below the root
  EXPECT_EQ(network.max_fan_in(), 2);
  EXPECT_GT(m.aggregation_latency, 0);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_FALSE(m.degraded);
}

TEST(TreeAggregation, SingleNodeSetNeverLeavesItsMonitor) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  network.set_topology(fanout2());

  // All ranks on node 7: the partial still climbs 7 -> 3 -> 1 -> 0.
  const auto deep = network.measure({168, 169, 170});
  EXPECT_EQ(deep.active_monitors, 1);
  EXPECT_EQ(network.tree_hops(), 3u);
  EXPECT_EQ(deep.root_fan_in, 1);
  // All ranks on the root's own node: nothing crosses the network.
  const auto local = network.measure({0, 1, 2});
  EXPECT_EQ(local.active_monitors, 1);
  EXPECT_EQ(network.tree_hops(), 3u);  // unchanged
  EXPECT_EQ(local.root_fan_in, 0);
}

TEST(TreeFailover, InteriorCrashPromotesLowestChildAndAdoptsSiblings) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(2 * sim::kSecond);
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  network.set_topology(fanout2());
  faults::ToolFaultPlan plan;
  plan.monitor_crashes.push_back({.monitor = 1, .at = sim::kSecond});
  plan.reregistration_latency = sim::from_millis(250);
  network.set_tool_faults(plan);

  const auto m = network.measure(kAllNodesSet);
  EXPECT_EQ(network.monitor_crashes(), 1u);
  EXPECT_EQ(network.subtree_failovers(), 1u);
  EXPECT_EQ(network.lead_failovers(), 0u);  // the root never noticed
  EXPECT_EQ(network.lead_monitor(), 0);

  // Node 3 (lowest surviving child) took node 1's place; node 4 re-parents
  // under it, node 7 stays where it was.
  const core::MonitorTopology* tree = network.topology();
  ASSERT_NE(tree, nullptr);
  EXPECT_TRUE(tree->removed(1));
  EXPECT_EQ(tree->parent(3), 0);
  EXPECT_EQ(tree->parent(4), 3);
  EXPECT_EQ(tree->parent(7), 3);
  EXPECT_EQ(tree->level(3), 1);
  EXPECT_EQ(tree->level(4), 2);

  // Node 1's ranks are uncovered; everyone else still aggregates.
  EXPECT_EQ(m.partials_missing, 1);
  EXPECT_NEAR(m.coverage, 7.0 / 8.0, 1e-12);
  EXPECT_FALSE(m.degraded);
  EXPECT_EQ(m.levels, 2);  // the promotion flattened the deep branch
  // The subtree re-registration stall is charged to this first sample only.
  EXPECT_GE(m.aggregation_latency, plan.reregistration_latency);
  const auto second = network.measure(kAllNodesSet);
  EXPECT_LT(second.aggregation_latency, plan.reregistration_latency);
}

TEST(TreeFailover, RootCrashFailsOverToPromotedChild) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(2 * sim::kSecond);
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  network.set_topology(fanout2());
  faults::ToolFaultPlan plan;
  plan.lead_crash_at = sim::kSecond;
  plan.reregistration_latency = sim::from_millis(250);
  network.set_tool_faults(plan);

  const auto m = network.measure(kAllNodesSet);
  // A dead root is a lead failover, not a subtree failover: its lowest
  // child is the new root and adopts the other branch.
  EXPECT_EQ(network.lead_failovers(), 1u);
  EXPECT_EQ(network.subtree_failovers(), 0u);
  EXPECT_EQ(network.lead_monitor(), 1);
  const core::MonitorTopology* tree = network.topology();
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->root(), 1);
  EXPECT_EQ(tree->parent(2), 1);
  EXPECT_EQ(m.partials_missing, 1);  // the old root's ranks went dark
  EXPECT_NEAR(m.coverage, 7.0 / 8.0, 1e-12);
  EXPECT_GE(m.aggregation_latency, plan.reregistration_latency);
}

TEST(TreeFailover, CascadeInTheSameWindowKeepsSurvivorsAggregating) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(2 * sim::kSecond);
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  network.set_topology(fanout2());
  faults::ToolFaultPlan plan;
  // Node 1 dies, node 3 is promoted into its place — then dies too before
  // the next sample. Two independent promotions, zero lead failovers.
  plan.monitor_crashes.push_back({.monitor = 1, .at = sim::kSecond});
  plan.monitor_crashes.push_back({.monitor = 3, .at = sim::kSecond});
  network.set_tool_faults(plan);

  const auto m = network.measure(kAllNodesSet);
  EXPECT_EQ(network.monitor_crashes(), 2u);
  EXPECT_EQ(network.subtree_failovers(), 2u);
  EXPECT_EQ(network.lead_failovers(), 0u);
  EXPECT_EQ(network.lead_monitor(), 0);
  const core::MonitorTopology* tree = network.topology();
  ASSERT_NE(tree, nullptr);
  // Second promotion: node 4 replaces node 3 and inherits node 7.
  EXPECT_EQ(tree->parent(4), 0);
  EXPECT_EQ(tree->parent(7), 4);
  EXPECT_EQ(m.partials_missing, 2);
  EXPECT_NEAR(m.coverage, 6.0 / 8.0, 1e-12);
  EXPECT_FALSE(m.degraded);
}

TEST(TreeFailover, StarConfigIsIgnoredByTheNetwork) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  core::TopologyConfig star;  // fanout 0 = "infinite" = the flat star
  network.set_topology(star);
  EXPECT_FALSE(network.tree_mode());
  EXPECT_EQ(network.topology(), nullptr);
}

TEST(TreeFailoverDeath, ArmingAfterSamplingRejected) {
  simmpi::World world(config192(), workloads::make_factory(small_profile()));
  world.start();
  world.engine().run_until(sim::kSecond);
  trace::StackInspector inspector(world);
  core::MonitorNetwork network(world, inspector);
  network.measure({0});
  EXPECT_DEATH(network.set_topology(fanout2()), "before the first sample");
}

// --- End-to-end through run_one() ------------------------------------------

harness::RunConfig hang_config(std::uint64_t seed) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 96;
  config.platform = sim::Platform::tianhe2();  // 4 nodes
  config.seed = seed;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  config.fault_trigger_lo = 40 * sim::kSecond;
  config.fault_trigger_hi = 40 * sim::kSecond;
  return config;
}

std::string journal_of(harness::RunConfig config) {
  std::ostringstream out;
  obs::JsonlJournal journal(out);
  config.telemetry = &journal;
  (void)harness::run_one(config);
  return out.str();
}

TEST(TreeFailover, UnsetTreeIsByteIdenticalToExplicitStar) {
  // The compatibility contract: not asking for a tree and explicitly
  // asking for fan-out "infinity" are the same run, byte for byte.
  harness::RunConfig star = hang_config(5);
  harness::RunConfig inf = hang_config(5);
  inf.monitor_tree.fanout = 0;
  EXPECT_EQ(journal_of(star), journal_of(inf));
}

TEST(TreeFailover, TreeRunDetectsLikeTheStarAndJournalsItsLevels) {
  harness::RunConfig star_config = hang_config(9);
  harness::RunConfig tree_config = hang_config(9);
  tree_config.monitor_tree.fanout = 2;

  const auto star = harness::run_one(star_config);
  const auto tree = harness::run_one(tree_config);
  // The tree reroutes the tool's own traffic, not its observations: the
  // same hang is caught at the same instant.
  ASSERT_FALSE(star.hangs().empty());
  ASSERT_FALSE(tree.hangs().empty());
  EXPECT_EQ(star.hangs().front().detected_at, tree.hangs().front().detected_at);
  // Tree accounting flows to the RunResult; the star's stays zero.
  EXPECT_EQ(star.tree_hops, 0u);
  EXPECT_GT(tree.tree_hops, 0u);
  EXPECT_LE(tree.max_monitor_fan_in, 2);
  EXPECT_LE(tree.root_messages, tree.tree_hops);

  const std::string star_log = journal_of(star_config);
  const std::string tree_log = journal_of(tree_config);
  EXPECT_EQ(star_log.find("\"ev\":\"monitor_level\""), std::string::npos);
  EXPECT_EQ(star_log.find("\"tree\":true"), std::string::npos);
  EXPECT_NE(tree_log.find("\"ev\":\"monitor_level\""), std::string::npos);
  EXPECT_NE(tree_log.find("\"tree\":true"), std::string::npos);
}

TEST(TreeFailover, InteriorCrashIsJournaledEndToEnd) {
  // The runner derives the tree placement from the run seed; for seed 9
  // monitor 1 is an interior node with one child (monitor 2), so killing
  // it promotes 2 under the root — visible in the journal and in the
  // RunResult counters.
  harness::RunConfig config = hang_config(9);
  config.fault = faults::FaultType::kNone;
  config.monitor_tree.fanout = 2;
  config.tool_faults.monitor_crashes.push_back(
      {.monitor = 1, .at = 40 * sim::kSecond});

  std::ostringstream out;
  obs::JsonlJournal journal(out);
  config.telemetry = &journal;
  const auto result = harness::run_one(config);
  EXPECT_EQ(result.monitor_crashes, 1u);
  EXPECT_EQ(result.subtree_failovers, 1u);
  EXPECT_EQ(result.lead_failovers, 0u);

  const std::string log = out.str();
  EXPECT_NE(log.find("\"ev\":\"monitor_crash\""), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"tree_failover\""), std::string::npos);
  EXPECT_NE(log.find("\"failed\":1"), std::string::npos);
  EXPECT_NE(log.find("\"promoted\":2"), std::string::npos);
  EXPECT_EQ(log.find("\"ev\":\"lead_failover\""), std::string::npos);
}

}  // namespace
}  // namespace parastack
