// Integration coverage for the tool-fault substrate: a lead-monitor crash
// must drive the deterministic failover and flip the detector into
// degraded mode (journaled), and a fully blinded tool must hand off to the
// fallback TimeoutDetector so an injected hang still ends the job. These
// exercise the whole stack — ToolFaultPlan -> MonitorNetwork ->
// ScroutSampler/SuspicionJudge -> HangDetector -> harness fallback wiring —
// through run_one(), asserting on the journal the way a user would.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/runner.hpp"
#include "obs/journal.hpp"

namespace parastack {
namespace {

harness::RunConfig base_config(std::uint64_t seed) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();  // 24 cores/node -> 2 nodes
  config.seed = seed;
  config.background_slowdowns = false;
  return config;
}

TEST(ToolResilience, LeadCrashDrivesFailoverAndDegradedMode) {
  // Node 0 hosts 24 of the 32 ranks; killing its monitor (the lead) leaves
  // coverage persistently below the 0.55 quorum, so the detector must
  // journal the failover and enter degraded mode — without reporting a
  // hang, because a blinded tool is not a hung application.
  std::ostringstream out;
  obs::JsonlJournal journal(out);
  auto config = base_config(5);
  config.tool_faults.lead_crash_at = 40 * sim::kSecond;
  config.telemetry = &journal;
  const auto result = harness::run_one(config);

  EXPECT_EQ(result.monitor_crashes, 1u);
  EXPECT_EQ(result.lead_failovers, 1u);
  EXPECT_GT(result.degraded_entries, 0u);
  EXPECT_TRUE(result.hangs().empty());

  const std::string log = out.str();
  EXPECT_NE(log.find("\"ev\":\"monitor_crash\""), std::string::npos);
  EXPECT_NE(log.find("\"was_lead\":true"), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"lead_failover\""), std::string::npos);
  EXPECT_NE(log.find("\"from\":0"), std::string::npos);
  EXPECT_NE(log.find("\"to\":1"), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"degraded_mode\""), std::string::npos);
  EXPECT_NE(log.find("\"entered\":true"), std::string::npos);
}

TEST(ToolResilience, BlindedToolHandsOffToTheFallbackTimeout) {
  // Every monitor dead before the hang strikes: ParaStack is blind, the
  // degraded-mode transition starts the fallback TimeoutDetector, and the
  // fallback — which traces directly, immune to tool faults — ends the job.
  std::ostringstream out;
  obs::JsonlJournal journal(out);
  auto config = base_config(23);
  config.fault = faults::FaultType::kComputeHang;
  config.fault_trigger_lo = 70 * sim::kSecond;
  config.fault_trigger_hi = 70 * sim::kSecond;
  config.tool_faults.monitor_crashes.push_back(
      {.monitor = 1, .at = 30 * sim::kSecond});
  config.tool_faults.lead_crash_at = 30 * sim::kSecond;
  config.degraded_fallback_timeout = true;
  config.telemetry = &journal;
  const auto result = harness::run_one(config);

  EXPECT_EQ(result.monitor_crashes, 2u);
  EXPECT_GT(result.degraded_entries, 0u);
  EXPECT_TRUE(result.hangs().empty());  // the blind primary saw nothing

  const harness::DetectorRunResult* fallback = nullptr;
  for (const auto& entry : result.detectors) {
    if (entry.label == "timeout-fallback") fallback = &entry;
  }
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->kind, core::DetectorKind::kTimeout);
  ASSERT_TRUE(fallback->detected());
  EXPECT_GE(fallback->detections.front().detected_at, 70 * sim::kSecond);

  // The fallback's kill wiring ended the job before walltime expiry.
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.end_time, result.walltime);
  EXPECT_EQ(result.end_time, fallback->detections.front().detected_at);

  const std::string log = out.str();
  EXPECT_NE(log.find("\"ev\":\"degraded_mode\""), std::string::npos);
  EXPECT_NE(log.find("\"entered\":true"), std::string::npos);
}

TEST(ToolResilience, FallbackStaysDormantWhileTheToolIsHealthy) {
  // With the flag set but no tool faults, the fallback must never start:
  // the run's outcome (and its RunResult roster) gains one idle entry at
  // most, and ParaStack still does the detecting.
  auto config = base_config(11);
  config.fault = faults::FaultType::kComputeHang;
  config.degraded_fallback_timeout = true;
  const auto result = harness::run_one(config);
  ASSERT_FALSE(result.hangs().empty());
  for (const auto& entry : result.detectors) {
    if (entry.label == "timeout-fallback") {
      EXPECT_TRUE(entry.detections.empty());
    }
  }
  EXPECT_EQ(result.degraded_entries, 0u);
}

}  // namespace
}  // namespace parastack
