// End-to-end sweeps: for every benchmark in the paper's suite, an injected
// computation hang must be detected, classified, and attributed, on more
// than one platform, at small scale (test-speed inputs).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/runner.hpp"

namespace parastack::harness {
namespace {

struct Scenario {
  workloads::Bench bench;
  const char* input;
  // FT's multi-second cycles make model building slow; its faults must
  // strike later (the paper likewise discards too-early faults, §7).
  int min_fault_s = 5;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string(workloads::bench_name(info.param.bench)) + "_" +
         info.param.input;
}

class HangSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(HangSweep, ComputeHangDetectedAndAttributed) {
  const auto& scenario = GetParam();
  RunConfig config;
  config.bench = scenario.bench;
  config.input = scenario.input;
  config.nranks = 32;
  config.platform = sim::Platform::tianhe2();
  config.seed = 12345;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  config.min_fault_time = scenario.min_fault_s * sim::kSecond;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated())
      << "fault never activated; estimate="
      << sim::to_seconds(result.estimated_clean);
  ASSERT_TRUE(result.parastack_detected());
  const auto& report = result.hangs().front();
  EXPECT_GT(report.detected_at, result.fault.activated_at);
  EXPECT_EQ(report.kind, core::HangKind::kComputationError);
  ASSERT_FALSE(report.faulty_ranks.empty());
  // The victim must be in the (usually singleton) reported set.
  bool found = false;
  for (const auto r : report.faulty_ranks) {
    if (r == result.fault.victim) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_LE(report.faulty_ranks.size(), 3u);
  // Timely: well under the paper's ~1 minute expectation.
  EXPECT_LT(result.response_delay_seconds(), 120.0);
}

TEST_P(HangSweep, CommDeadlockDetectedAsCommunication) {
  const auto& scenario = GetParam();
  RunConfig config;
  config.bench = scenario.bench;
  config.input = scenario.input;
  config.nranks = 32;
  config.platform = sim::Platform::stampede();
  config.seed = 777;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kCommDeadlock;
  config.min_fault_time = scenario.min_fault_s * sim::kSecond;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_TRUE(result.parastack_detected());
  EXPECT_EQ(result.hangs().front().kind, core::HangKind::kCommunicationError);
  EXPECT_TRUE(result.hangs().front().faulty_ranks.empty());
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, HangSweep,
    ::testing::Values(Scenario{workloads::Bench::kBT, "C"},
                      Scenario{workloads::Bench::kCG, "C"},
                      Scenario{workloads::Bench::kFT, "C", 80},
                      Scenario{workloads::Bench::kLU, "C"},
                      Scenario{workloads::Bench::kMG, "C"},
                      Scenario{workloads::Bench::kSP, "C"},
                      Scenario{workloads::Bench::kHPL, "40000"},
                      Scenario{workloads::Bench::kHPCG, "64"}),
    scenario_name);

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, LuHangDetectionIsSeedRobust) {
  RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";
  config.nranks = 32;
  config.platform = sim::Platform::tardis();
  config.seed = 50000 + static_cast<std::uint64_t>(GetParam()) * 31;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kComputeHang;
  config.min_fault_time = 5 * sim::kSecond;  // small test inputs run short
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  EXPECT_TRUE(result.parastack_detected());
  if (result.parastack_detected()) {
    EXPECT_GT(result.hangs().front().detected_at, result.fault.activated_at);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 6));

TEST(EndToEnd, CleanRunsAcrossPlatformsStayQuiet) {
  for (const auto& platform : {sim::Platform::tardis(),
                               sim::Platform::tianhe2(),
                               sim::Platform::stampede()}) {
    RunConfig config;
    config.bench = workloads::Bench::kCG;
    config.input = "C";
    config.nranks = 32;
    config.platform = platform;
    config.seed = 31337;
    const auto result = run_one(config);
    EXPECT_TRUE(result.completed) << platform.name;
    EXPECT_FALSE(result.parastack_detected()) << platform.name;
  }
}

TEST(EndToEnd, NodeFreezeCaughtOnRealTopology) {
  // 256 ranks on Tianhe-2 = 11 nodes; freezing the victim's node (24 ranks,
  // mostly mid-compute) hangs the job and the frozen ranks are attributed.
  // Note: when the frozen node happens to dominate both monitor sets the
  // tool can miss (a genuine limitation at tiny monitored fractions); this
  // deterministic seed exercises the common, detectable case.
  RunConfig config;
  config.bench = workloads::Bench::kCG;
  config.input = "D";
  config.nranks = 256;
  config.platform = sim::Platform::tianhe2();
  config.seed = 42;
  config.background_slowdowns = false;
  config.fault = faults::FaultType::kNodeFreeze;
  const auto result = run_one(config);
  ASSERT_TRUE(result.fault.activated());
  ASSERT_TRUE(result.parastack_detected());
  const auto& report = result.hangs().front();
  EXPECT_EQ(report.kind, core::HangKind::kComputationError);
  // Every attributed rank lives on the frozen node.
  const int frozen_node = result.fault.victim / 24;
  for (const auto r : report.faulty_ranks) {
    EXPECT_EQ(r / 24, frozen_node) << "rank " << r;
  }
}

}  // namespace
}  // namespace parastack::harness
