// The §6 extensions in one demo: a hybrid MPI+OpenMP application
// (4 threads/rank, MPI_THREAD_MULTIPLE) that alternates between two
// behaviourally different phases. The application announces phase changes
// to ParaStack (per-phase models) and a mid-run hang in phase B is still
// caught and attributed.
//
// Build & run:  ./build/examples/hybrid_phases

#include <cstdio>
#include <memory>

#include "core/detector.hpp"
#include "faults/injector.hpp"
#include "workloads/synthetic.hpp"

using namespace parastack;

namespace {

std::shared_ptr<const workloads::BenchmarkProfile> hybrid_app() {
  auto profile = std::make_shared<workloads::BenchmarkProfile>();
  profile->name = "HYBRID-MZ";
  profile->iterations = 6000;
  profile->reference_ranks = 32;
  profile->setup_time = sim::kSecond;
  profile->phases = {
      {"omp_parallel_sweep", sim::from_millis(28), 0.15,
       workloads::CommPattern::kHaloBlocking, 96 * 1024},
      {"omp_parallel_norm", sim::from_millis(5), 0.1,
       workloads::CommPattern::kAllreduce, 16},
  };
  return profile;
}

}  // namespace

int main() {
  faults::FaultPlan plan;
  plan.type = faults::FaultType::kComputeHang;
  plan.victim = 21;
  plan.trigger_time = 90 * sim::kSecond;
  faults::FaultInjector injector(plan);

  simmpi::WorldConfig config;
  config.nranks = 32;
  config.platform = sim::Platform::stampede();
  config.seed = 404;
  config.background_slowdowns = false;
  config.threads_per_rank = 4;          // hybrid: 1 master + 3 workers
  config.mpi_thread_multiple = true;    // comm rotates across threads
  simmpi::World world(config, injector.wrap(workloads::make_factory(
                                  hybrid_app())));
  injector.arm(world);

  trace::StackInspector inspector(world);
  core::HangDetector detector(world, inspector, core::DetectorConfig{});
  core::MonitorNetwork monitors(world, inspector);
  detector.use_monitor_network(&monitors);

  // The (instrumented) application announces a phase switch every 25 s.
  for (int i = 1; i <= 6; ++i) {
    world.engine().schedule_at(i * 25 * sim::kSecond, [&detector, i] {
      detector.notify_phase_change(i % 2);
      std::printf("t=%3ds  app entered phase %d -> detector switches to the "
                  "phase-%d model (%zu samples so far)\n",
                  i * 25, i % 2, i % 2, detector.model().size());
    });
  }

  world.start();
  detector.start();
  std::printf("monitoring a 4-thread-per-rank MPI_THREAD_MULTIPLE app on %d "
              "ranks (%d monitors, %d per-node)...\n\n",
              config.nranks, monitors.monitor_count(),
              world.platform().cores_per_node);

  auto& engine = world.engine();
  while (!world.all_finished() && !detector.hang_reported() &&
         engine.now() < 10 * sim::kMinute && engine.step()) {
  }

  std::printf("\nfault: %s on rank %d at t=%.0fs\n",
              faults::fault_type_name(injector.record().type).data(),
              injector.record().victim,
              sim::to_seconds(injector.record().activated_at));
  if (detector.hang_reported()) {
    std::printf("ParaStack (phase %d model): %s\n", detector.current_phase(),
                detector.hang_reports().front().to_string().c_str());
    std::printf("tool traffic the whole run: %llu messages, %llu bytes "
                "(%llu samples)\n",
                static_cast<unsigned long long>(monitors.messages_sent()),
                static_cast<unsigned long long>(monitors.bytes_sent()),
                static_cast<unsigned long long>(monitors.samples()));
    return 0;
  }
  std::printf("no hang detected (unexpected)\n");
  return 1;
}
