// Batch-scheduler integration: submit an HPL job through the (simulated)
// Slurm front end with ParaStack attached, hit a mid-run hang, and see the
// job killed early — with the Service-Unit bill showing what the user saved
// compared to burning the whole allocation (paper §2 and §7.1-V).
//
// Build & run:  ./build/examples/batch_savings

#include <cstdio>

#include "harness/runner.hpp"
#include "sched/scheduler.hpp"

using namespace parastack;

int main() {
  sched::JobTicket ticket;
  ticket.nodes = 8;
  ticket.cores_per_node = 32;        // a Tardis allocation
  ticket.walltime = 15 * sim::kMinute;  // user over-requests, as users do
  ticket.job_name = "xhpl";

  std::printf("submitting via Slurm integration:\n  %s\n\n",
              sched::submission_command(sched::BatchSystem::kSlurm, ticket,
                                        "./xhpl -n 80000")
                  .c_str());

  harness::RunConfig config;
  config.bench = workloads::Bench::kHPL;
  config.input = "80000";
  config.nranks = 256;
  config.platform = sim::Platform::tardis();
  config.seed = 1717;
  config.fault = faults::FaultType::kComputeHang;
  config.walltime_override = ticket.walltime;
  const auto result = harness::run_one(config);

  std::printf("job status: fault (%s) on rank %d at t=%.0fs\n",
              faults::fault_type_name(result.fault.type).data(),
              result.fault.victim, sim::to_seconds(result.fault.activated_at));

  const auto detection = result.first_parastack_detection();
  const auto charge = sched::settle(
      ticket,
      result.finish_time, detection);
  const auto no_monitor_charge =
      sched::settle(ticket, result.finish_time, std::nullopt);

  if (detection) {
    std::printf("ParaStack: %s\n", result.hangs().front().to_string().c_str());
  }
  std::printf("\n%-28s %12s %12s\n", "", "with ParaStack", "without");
  std::printf("%-28s %11.0fs %11.0fs\n", "billed wall-clock",
              sim::to_seconds(charge.elapsed),
              sim::to_seconds(no_monitor_charge.elapsed));
  std::printf("%-28s %12.1f %12.1f\n", "Service Units billed",
              charge.service_units, no_monitor_charge.service_units);
  std::printf("%-28s %11.1f%% %12s\n", "slot saved",
              100.0 * charge.savings_fraction, "0%");
  std::printf("\n(The paper measures an average 35.5%% slot saving over 10 "
              "erroneous HPL runs, approaching 50%% asymptotically.)\n");
  return 0;
}
