// Quickstart: monitor a simulated MPI job with ParaStack, inject a
// computation hang mid-run, and watch the detector verify the hang and
// pinpoint the faulty rank — the paper's headline workflow (Figure 1).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "harness/runner.hpp"

using namespace parastack;

int main() {
  harness::RunConfig config;
  config.bench = workloads::Bench::kLU;
  config.input = "C";                        // small input -> fast demo
  config.nranks = 64;
  config.platform = sim::Platform::tardis();
  config.seed = 2026;
  config.fault = faults::FaultType::kComputeHang;

  std::printf("submitting %s(%s) on %d ranks (%s), ParaStack attached...\n",
              workloads::bench_name(config.bench).data(),
              config.input.c_str(), config.nranks,
              config.platform.name.c_str());

  const harness::RunResult result = harness::run_one(config);

  std::printf("fault: %s on rank %d, activated at t=%.2fs\n",
              faults::fault_type_name(result.fault.type).data(),
              result.fault.victim, sim::to_seconds(result.fault.activated_at));

  if (!result.parastack_detected()) {
    std::printf("no hang detected (unexpected for this demo)\n");
    return 1;
  }
  const auto& report = result.hangs().front();
  std::printf("ParaStack: %s\n", report.to_string().c_str());
  std::printf("response delay: %.2fs; job killed at t=%.2fs "
              "(allocated slot was %.0fs -> %.1f%% of the slot saved)\n",
              result.response_delay_seconds(),
              sim::to_seconds(result.end_time),
              sim::to_seconds(result.walltime),
              100.0 * (1.0 - static_cast<double>(result.end_time) /
                                 static_cast<double>(result.walltime)));
  return 0;
}
