// Deadlock triage: a communication error (a victim rank stuck inside an
// MPI call that never completes) gradually drags the whole job into a hang.
// ParaStack detects it and — finding no process outside MPI — classifies it
// as a communication error, pointing the developer at deadlock analysis
// tools (the paper's Figure 1 workflow) instead of a per-rank debugger.
//
// Build & run:  ./build/examples/deadlock_triage

#include <cstdio>

#include "harness/runner.hpp"

using namespace parastack;

namespace {

void triage(faults::FaultType fault_type, std::uint64_t seed) {
  harness::RunConfig config;
  config.bench = workloads::Bench::kCG;
  config.input = "C";
  config.nranks = 64;
  config.platform = sim::Platform::stampede();
  config.seed = seed;
  config.fault = fault_type;
  config.min_fault_time = 10 * sim::kSecond;

  std::printf("--- injected fault: %s ---\n",
              faults::fault_type_name(fault_type).data());
  const auto result = harness::run_one(config);
  if (!result.parastack_detected()) {
    std::printf("no hang detected\n\n");
    return;
  }
  const auto& report = result.hangs().front();
  std::printf("%s\n", report.to_string().c_str());
  switch (report.kind) {
    case core::HangKind::kCommunicationError:
      std::printf("triage: no process is outside MPI -> communication error."
                  "\n        next step: stack-trace equivalence analysis "
                  "(STAT) / deadlock detection across all %d ranks.\n\n",
                  config.nranks);
      break;
    case core::HangKind::kComputationError:
      std::printf("triage: %zu process(es) rest outside MPI -> computation "
                  "error.\n        next step: attach a full debugger to "
                  "rank %d only — %d suspects eliminated.\n\n",
                  report.faulty_ranks.size(), report.faulty_ranks.front(),
                  config.nranks - 1);
      break;
  }
}

}  // namespace

int main() {
  // The same monitor, two very different hangs: ParaStack's verdict tells
  // the user which debugging road to take (paper §2, Figure 1).
  triage(faults::FaultType::kCommDeadlock, 7001);
  triage(faults::FaultType::kComputeHang, 7002);
  return 0;
}
