// Waveform explorer: print the S_out waveform and the detector's learned
// model for any benchmark/platform/scale combination — the fastest way to
// understand *why* ParaStack's statistical model works on your application.
//
// Usage:  ./build/examples/waveform_explorer [BENCH] [INPUT] [RANKS] [PLATFORM]
//   e.g.  ./build/examples/waveform_explorer FT D 256 Tardis

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/detector.hpp"
#include "harness/runner.hpp"
#include "workloads/synthetic.hpp"

using namespace parastack;

namespace {

workloads::Bench parse_bench(const char* name) {
  for (const auto bench : workloads::kAllBenches) {
    if (workloads::bench_name(bench) == name) return bench;
  }
  std::fprintf(stderr, "unknown benchmark '%s' (use BT CG FT LU MG SP HPL "
               "HPCG); defaulting to LU\n", name);
  return workloads::Bench::kLU;
}

sim::Platform parse_platform(const char* name) {
  if (std::strcmp(name, "Tardis") == 0) return sim::Platform::tardis();
  if (std::strcmp(name, "Stampede") == 0) return sim::Platform::stampede();
  return sim::Platform::tianhe2();
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench = parse_bench(argc > 1 ? argv[1] : "LU");
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 256;
  const std::string input =
      argc > 2 ? argv[2] : workloads::default_input(bench, nranks);
  const auto platform = parse_platform(argc > 4 ? argv[4] : "Tianhe-2");

  std::printf("%s(%s) on %d ranks, %s\n\n", workloads::bench_name(bench).data(),
              input.c_str(), nranks, platform.name.c_str());

  const auto profile = workloads::make_profile(bench, input, nranks);
  simmpi::WorldConfig world_config;
  world_config.nranks = nranks;
  world_config.platform = platform;
  world_config.seed = 2024;
  world_config.background_slowdowns = false;
  simmpi::World world(world_config, workloads::make_factory(profile));
  trace::StackInspector inspector(world);
  core::HangDetector detector(world, inspector, core::DetectorConfig{});
  world.start();
  detector.start();

  // Waveform strip after setup: one char per 100 ms over 30 s.
  world.engine().run_until(15 * sim::kSecond);
  std::printf("S_out strip (100ms/char; '#'>0.8 '+'>0.5 '-'>0.2 '.'<=0.2):\n");
  for (int row = 0; row < 3; ++row) {
    for (int i = 0; i < 100; ++i) {
      world.engine().run_until(world.engine().now() + 100 * sim::kMillisecond);
      const double sout = world.sout();
      std::putchar(sout > 0.8 ? '#' : sout > 0.5 ? '+' : sout > 0.2 ? '-'
                                                                    : '.');
    }
    std::putchar('\n');
  }

  // Let the model mature, then show what the detector learned.
  world.engine().run_until(world.engine().now() + 90 * sim::kSecond);
  const auto decision = detector.current_decision();
  std::printf("\nmodel after %zu samples (interval %.0f ms, %zu doublings, "
              "randomness %s):\n",
              detector.model().size(), sim::to_millis(detector.interval()),
              detector.interval_doublings(),
              detector.randomness_confirmed() ? "confirmed" : "pending");
  if (decision.ready) {
    std::printf("  suspicion: S_crout <= %.2f (probability %.3f, tolerance "
                "%.2f)\n  q = %.3f -> %zu consecutive suspicions verify a "
                "hang at %.1f%% confidence\n",
                decision.threshold, decision.p_m_prime, decision.tolerance,
                decision.q, decision.k,
                100.0 * (1.0 - detector.config().alpha));
    std::printf("  worst-case detection latency ~ I * k = %.1f s\n",
                sim::to_seconds(detector.interval()) *
                    static_cast<double>(decision.k));
  } else {
    std::printf("  model not ready yet (needs more samples)\n");
  }
  std::printf("\ndistribution of sampled S_crout:\n");
  double prev = 0.0;
  for (const auto& point : detector.model().ecdf().support()) {
    const double mass = point.cum_prob - prev;
    prev = point.cum_prob;
    std::printf("  %.1f %5.1f%% |", point.value, 100.0 * mass);
    for (int i = 0; i < static_cast<int>(mass * 100); ++i) std::putchar('#');
    std::putchar('\n');
  }
  return 0;
}
